// Accounting invariants of the simulator: time must be conserved, sync-op
// counts must match the analytic recurrences, and no scheduler may go
// faster than perfect speedup.
#include <gtest/gtest.h>

#include <map>

#include "kernels/sor.hpp"
#include "kernels/synthetic.hpp"
#include "machines/machines.hpp"
#include "sched/bounds.hpp"
#include "sched/registry.hpp"
#include "sim/machine_sim.hpp"

namespace afs {
namespace {

MachineConfig quiet(MachineConfig m) {
  m.epoch_jitter = 0.0;  // deterministic starts so accounting is exact
  return m;
}

TEST(Conservation, TimeDecompositionSumsToSpan) {
  // With zero jitter and no delays, every processor is accounted for from
  // loop start to loop end: busy + sync + comm + idle + barrier = P * span.
  MachineConfig m = quiet(iris());
  MachineSim sim(m);
  for (const char* spec : {"GSS", "AFS", "STATIC", "SS", "TRAPEZOID"}) {
    auto sched = make_scheduler(spec);
    const auto prog = SorKernel::program(64, 4);
    const SimResult r = sim.run(prog, *sched, 4);
    const double accounted = r.busy + r.sync + r.comm + r.idle + r.barrier;
    EXPECT_NEAR(accounted, 4.0 * r.makespan, 1e-6 * accounted) << spec;
  }
}

TEST(Conservation, IterationCountExact) {
  MachineSim sim(quiet(iris()));
  for (const char* spec : {"GSS", "AFS", "FACTORING", "MOD-FACTORING"}) {
    auto sched = make_scheduler(spec);
    const SimResult r = sim.run(SorKernel::program(100, 3), *sched, 5);
    EXPECT_EQ(r.iterations, 300) << spec;
  }
}

TEST(Conservation, SchedulerIterAccountingMatchesLoopSize) {
  MachineSim sim(quiet(iris()));
  auto sched = make_scheduler("AFS");
  const SimResult r = sim.run(SorKernel::program(128, 4), *sched, 8);
  const QueueStats total = r.sched_stats.total();
  EXPECT_EQ(total.iters_local + total.iters_remote, 128 * 4);
}

TEST(Conservation, NoSuperlinearSpeedup) {
  MachineSim sim(quiet(iris()));
  const auto prog = SorKernel::program(128, 4);
  const double serial = sim.ideal_serial_time(prog);
  for (const char* spec : {"AFS", "GSS", "STATIC", "BEST-STATIC", "WS"}) {
    for (int p : {1, 2, 4, 8}) {
      auto sched = make_scheduler(spec);
      const SimResult r = sim.run(prog, *sched, p);
      EXPECT_GE(r.makespan, serial / p - 1e-9)
          << spec << " P=" << p << " exceeded perfect speedup";
    }
  }
}

TEST(Conservation, BusyTimeIndependentOfScheduler) {
  // Total compute is schedule-invariant; only where it runs changes.
  MachineSim sim(quiet(iris()));
  const auto prog = SorKernel::program(96, 5);
  double reference = -1.0;
  for (const char* spec : {"AFS", "GSS", "SS", "STATIC", "TRAPEZOID"}) {
    auto sched = make_scheduler(spec);
    const SimResult r = sim.run(prog, *sched, 6);
    if (reference < 0)
      reference = r.busy;
    else
      EXPECT_NEAR(r.busy, reference, 1e-9) << spec;
  }
}

// ------------------------------- Tables 3-5 count regressions -----------

TEST(SyncOpRegression, SsCountEqualsIterations) {
  // Table 3-5: SS does exactly N removals per loop, independent of P.
  MachineSim sim(quiet(iris()));
  auto sched = make_scheduler("SS");
  const SimResult r = sim.run(SorKernel::program(512, 1), *sched, 8);
  EXPECT_EQ(r.sched_stats.total().total_grabs(), 512);
}

TEST(SyncOpRegression, GssCountMatchesDrainRecurrence) {
  // GSS's grab count per loop is exactly the drain recurrence; the paper's
  // Table 3 reports 43 for N=512, P=8 — the recurrence gives the same
  // order (it differs from 43 only through their ceil convention).
  MachineSim sim(quiet(iris()));
  auto sched = make_scheduler("GSS");
  const SimResult r = sim.run(SorKernel::program(512, 1), *sched, 8);
  EXPECT_EQ(r.sched_stats.total().total_grabs(), drain_count(512, 8));
  // ceil-based chunks drain slightly faster than the paper's
  // floor-convention count of 43; same order either way.
  EXPECT_NEAR(static_cast<double>(drain_count(512, 8)), 43.0, 8.0);
}

TEST(SyncOpRegression, TrapezoidFewestCentralOps) {
  // Table 3 ordering at P=8: TRAPEZOID < GSS < FACTORING < SS.
  MachineSim sim(quiet(iris()));
  const auto prog = SorKernel::program(512, 1);
  std::map<std::string, std::int64_t> grabs;
  for (const char* spec : {"SS", "GSS", "FACTORING", "TRAPEZOID"}) {
    auto sched = make_scheduler(spec);
    grabs[spec] = sim.run(prog, *sched, 8).sched_stats.total().total_grabs();
  }
  EXPECT_LT(grabs["TRAPEZOID"], grabs["GSS"]);
  EXPECT_LT(grabs["GSS"], grabs["FACTORING"]);
  EXPECT_LT(grabs["FACTORING"], grabs["SS"]);
}

TEST(SyncOpRegression, AfsRemoteOpsRareOnBalancedLoop) {
  // Table 3's striking row: AFS balances SOR with ~0.4-1.1 remote
  // operations per queue per loop.
  MachineSim sim(iris());  // default jitter: realistic conditions
  auto sched = make_scheduler("AFS");
  const SimResult r = sim.run(SorKernel::program(512, 4), *sched, 8);
  EXPECT_LE(r.sched_stats.remote_per_queue_per_loop(), 3.0);
  EXPECT_GT(r.sched_stats.local_per_queue_per_loop(), 3.0);
}

TEST(SyncOpRegression, AfsQueueBoundHoldsInSim) {
  // Theorem 3.1 holds for simulated executions too.
  MachineSim sim(iris());
  auto sched = make_scheduler("AFS");
  const SimResult r = sim.run(SorKernel::program(512, 1), *sched, 8);
  const std::int64_t bound = afs_queue_sync_bound(512, 8, 8);
  for (const auto& q : r.sched_stats.queues) {
    EXPECT_LE(q.local_grabs, bound);
    EXPECT_LE(q.remote_grabs, bound);
  }
}

}  // namespace
}  // namespace afs
