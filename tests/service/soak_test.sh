#!/usr/bin/env bash
# Chaos soak for the sweep daemon (docs/SWEEP_SERVICE.md, "Serving").
#
# Exercises the full robustness contract end to end with the real binary:
#   1. batch ground truth   — every grid via `afs_sweep run` (no store);
#   2. warm phase           — daemon serves every grid cold, filling the
#                             content-addressed store;
#   3. chaos phase          — concurrent clients (plus one speaking
#                             garbage) mid-flight when the daemon is
#                             SIGKILLed: no drain, no checkpoint flush;
#   4. recovery phase       — a new daemon over the SAME store but a
#                             FRESH out-dir re-serves every request:
#                             >= 95% store hit-rate and every CSV
#                             byte-identical to the batch driver's;
#   5. drain phase          — SIGTERM: graceful drain, exit 0, socket
#                             unlinked.
#
# Usage: soak_test.sh <path-to-afs_sweep> [scratch-dir]
set -u

AFS_SWEEP="${1:?usage: soak_test.sh <path-to-afs_sweep> [scratch-dir]}"
SCRATCH="${2:-$(mktemp -d /tmp/afs_soak.XXXXXX)}"
SOCK="$SCRATCH/daemon.sock"
STORE="$SCRATCH/store"
MACHINE=butterfly1
PROCS=1,2,4
KERNELS=(gauss:600 gauss:900 gauss:1200)
SCHEDS=(SS,GSS AFS,FACT)

fail() { echo "soak_test: FAIL: $*" >&2; exit 1; }
note() { echo "soak_test: $*"; }

cleanup() {
  [ -n "${DAEMON_PID:-}" ] && kill -9 "$DAEMON_PID" 2>/dev/null
  wait 2>/dev/null
}
trap cleanup EXIT

start_daemon() { # $1 = out dir, $2 = log file
  "$AFS_SWEEP" serve --socket="$SOCK" --out-dir="$1" --store="$STORE" \
    2>"$2" &
  DAEMON_PID=$!
  for _ in $(seq 1 100); do
    if "$AFS_SWEEP" request --socket="$SOCK" --timeout=5 health \
        >/dev/null 2>&1; then
      return 0
    fi
    kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died on startup ($2)"
    sleep 0.1
  done
  fail "daemon never became healthy ($2)"
}

request_grid() { # $1 = kernel, $2 = schedulers, $3 = output file
  "$AFS_SWEEP" request --socket="$SOCK" --raw --timeout=300 grid \
    --kernel="$1" --machine="$MACHINE" --schedulers="$2" --procs="$PROCS" \
    >"$3" 2>&1
}

# ---- 1. batch ground truth ---------------------------------------------
note "building batch ground truth"
i=0
for k in "${KERNELS[@]}"; do
  for s in "${SCHEDS[@]}"; do
    "$AFS_SWEEP" run --kernel="$k" --machine="$MACHINE" --schedulers="$s" \
      --procs="$PROCS" --out-dir="$SCRATCH/batch_$i" --no-store \
      >"$SCRATCH/batch_$i.log" 2>&1 \
      || fail "batch grid $k/$s failed (see $SCRATCH/batch_$i.log)"
    [ -s "$SCRATCH/batch_$i/grid.csv" ] || fail "batch grid $i wrote no CSV"
    i=$((i + 1))
  done
done

# ---- 2. warm phase ------------------------------------------------------
note "warm phase: daemon fills the store"
start_daemon "$SCRATCH/out_warm" "$SCRATCH/daemon_warm.log"
i=0
for k in "${KERNELS[@]}"; do
  for s in "${SCHEDS[@]}"; do
    request_grid "$k" "$s" "$SCRATCH/warm_$i.json" \
      || fail "warm grid $k/$s failed (see $SCRATCH/warm_$i.json)"
    i=$((i + 1))
  done
done

# ---- 3. chaos phase -----------------------------------------------------
note "chaos phase: concurrent clients, then SIGKILL"
pids=()
for k in "${KERNELS[@]}"; do
  for s in "${SCHEDS[@]}"; do
    request_grid "$k" "$s" /dev/null &
    pids+=($!)
  done
done
# A grid not in the warm set keeps the dispatcher genuinely mid-compute
# when the SIGKILL lands (the warm grids replay from checkpoints fast).
request_grid gauss:4000 SS,GSS /dev/null &
pids+=($!)
# One client speaking garbage: the daemon must answer with a structured
# error, not fall over (exit 1 = request-level error is what we expect).
"$AFS_SWEEP" request --socket="$SOCK" --timeout=30 '{"verb":"nope"' \
  >/dev/null 2>&1 &
pids+=($!)
sleep 0.4
kill -9 "$DAEMON_PID" || fail "could not SIGKILL the daemon"
wait "${pids[@]}" 2>/dev/null  # client exits are unspecified mid-kill
DAEMON_PID=

# ---- 4. recovery phase --------------------------------------------------
# Same store, fresh out-dir: no sweep checkpoints to resume from, so every
# cell must come back from the content-addressed store.
note "recovery phase: fresh daemon over the same store"
start_daemon "$SCRATCH/out_recovered" "$SCRATCH/daemon_recover.log"
hits=0
misses=0
i=0
for k in "${KERNELS[@]}"; do
  for s in "${SCHEDS[@]}"; do
    out="$SCRATCH/recover_$i.json"
    request_grid "$k" "$s" "$out" || fail "recovery grid $k/$s failed ($out)"
    delta=$(sed -n \
      's/.*"store":{"hits":\([0-9][0-9]*\),"misses":\([0-9][0-9]*\).*/\1 \2/p' \
      "$out")
    [ -n "$delta" ] || fail "done event in $out carries no store delta"
    hits=$((hits + ${delta%% *}))
    misses=$((misses + ${delta##* }))

    csv=$(sed -n 's/.*"csv":\["\([^"]*\)".*/\1/p' "$out" | head -n1)
    [ -n "$csv" ] && [ -f "$csv" ] || fail "no CSV reported in $out"
    cmp "$csv" "$SCRATCH/batch_$i/grid.csv" \
      || fail "recovered CSV differs from batch for grid $i ($csv)"
    i=$((i + 1))
  done
done
total=$((hits + misses))
[ "$total" -gt 0 ] || fail "recovery served zero cells"
# hit-rate >= 95%, in integer arithmetic: 100*hits >= 95*total.
[ $((hits * 100)) -ge $((total * 95)) ] \
  || fail "warm hit-rate too low: $hits/$total"
note "recovery hit-rate: $hits/$total"

# ---- 5. drain phase -----------------------------------------------------
note "drain phase: SIGTERM"
kill -TERM "$DAEMON_PID" || fail "could not signal the daemon"
drain_rc=1
for _ in $(seq 1 100); do
  if ! kill -0 "$DAEMON_PID" 2>/dev/null; then drain_rc=0; break; fi
  sleep 0.1
done
[ "$drain_rc" -eq 0 ] || fail "daemon did not exit after SIGTERM"
wait "$DAEMON_PID"
rc=$?
DAEMON_PID=
[ "$rc" -eq 0 ] || fail "drain exited $rc, want 0"
[ ! -S "$SOCK" ] || fail "socket not unlinked after drain"
grep -q 'drained:' "$SCRATCH/daemon_recover.log" \
  || fail "drain counters missing from the daemon log"

note "PASS (scratch: $SCRATCH)"
rm -rf "$SCRATCH"
exit 0
