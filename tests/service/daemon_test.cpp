// Integration tests for the sweep daemon: an in-process SweepDaemon
// (signal handlers off, quiet log) served from a background thread and
// driven through real Unix-domain sockets via ServiceClient — the same
// transport `afs_sweep request` uses. Each test gets its own socket and
// out-dir under /tmp; the store is disabled so every run actually
// simulates (warm-store behavior is the soak test's subject).
#include "service/daemon.hpp"

#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <functional>
#include <optional>
#include <string>
#include <thread>

#include "service/client.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"

namespace afs::service {
namespace {

using std::chrono::steady_clock;

// A grid small enough to finish in well under a second.
const char* const kFastGrid =
    "{\"verb\":\"grid\",\"kernel\":\"gauss:600\",\"machine\":\"butterfly1\","
    "\"schedulers\":\"SS\",\"procs\":\"1,2\"";
// A grid slow enough (seconds) that deadlines, drains and disconnects
// reliably interrupt it mid-flight.
const char* const kSlowGrid =
    "{\"verb\":\"grid\",\"kernel\":\"gauss:4000\",\"machine\":\"butterfly1\","
    "\"schedulers\":\"SS,GSS\",\"procs\":\"1,2,4,8,16\"";

class DaemonTest : public ::testing::Test {
 protected:
  void Start(const std::function<void(DaemonOptions&)>& tweak = nullptr) {
    static std::atomic<int> seq{0};
    dir_ = "/tmp/afs_daemon_test." + std::to_string(::getpid()) + "." +
           std::to_string(seq.fetch_add(1));
    std::filesystem::create_directories(dir_);
    DaemonOptions o;
    o.socket_path = dir_ + "/sock";
    o.out_dir = dir_ + "/out";
    o.no_store = true;
    o.drain_timeout = 2.0;
    o.install_signal_handlers = false;
    o.log = nullptr;
    if (tweak) tweak(o);
    daemon_.emplace(std::move(o));
    serve_thread_ = std::thread([this] { rc_ = daemon_->serve(); });
  }

  /// Initiates the drain and joins serve(). Safe to call twice.
  void Drain() {
    if (daemon_ && serve_thread_.joinable()) {
      daemon_->request_drain();
      serve_thread_.join();
    }
  }

  void TearDown() override {
    Drain();
    daemon_.reset();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  /// Connects, retrying while serve() is still binding the socket.
  bool Connect(ServiceClient& c, double timeout_s = 10.0) {
    const auto deadline =
        steady_clock::now() + std::chrono::duration<double>(timeout_s);
    std::string error;
    while (steady_clock::now() < deadline) {
      if (c.connect(daemon_->options().socket_path, error)) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ADD_FAILURE() << "could not connect: " << error;
    return false;
  }

  /// Reads and parses the next response line.
  bool ReadJson(ServiceClient& c, JsonValue& v, double timeout_s = 10.0) {
    std::string line;
    if (!c.read_line(line, timeout_s)) return false;
    std::string error;
    const bool ok = parse_json(line, v, error);
    EXPECT_TRUE(ok) << "unparseable response: " << line << " (" << error
                    << ")";
    return ok;
  }

  /// Reads past "log" events only — an in-flight request streams its
  /// progress on the same connection, interleaving with replies to later
  /// pipelined requests.
  bool ReadNonLog(ServiceClient& c, JsonValue& v, double timeout_s = 10.0) {
    const auto deadline =
        steady_clock::now() + std::chrono::duration<double>(timeout_s);
    for (;;) {
      const double left =
          std::chrono::duration<double>(deadline - steady_clock::now())
              .count();
      if (left <= 0.0 || !ReadJson(c, v, left)) return false;
      const JsonValue* event = v.find("event");
      if (event == nullptr || !event->is_string()) return false;
      if (event->string != "log") return true;
    }
  }

  /// Reads past progress events ("accepted", "log") to the next terminal
  /// event ("done", "error", ...).
  bool ReadTerminal(ServiceClient& c, JsonValue& v, double timeout_s = 60.0) {
    const auto deadline =
        steady_clock::now() + std::chrono::duration<double>(timeout_s);
    for (;;) {
      const double left =
          std::chrono::duration<double>(deadline - steady_clock::now())
              .count();
      if (left <= 0.0 || !ReadJson(c, v, left)) return false;
      const JsonValue* event = v.find("event");
      if (event == nullptr || !event->is_string()) return false;
      if (event->string != "accepted" && event->string != "log") return true;
    }
  }

  static std::string EventOf(const JsonValue& v) {
    const JsonValue* e = v.find("event");
    return e != nullptr && e->is_string() ? e->string : "<none>";
  }

  static std::string CodeOf(const JsonValue& v) {
    const JsonValue* c = v.find("code");
    return c != nullptr && c->is_string() ? c->string : "<none>";
  }

  std::string dir_;
  std::optional<SweepDaemon> daemon_;
  std::thread serve_thread_;
  int rc_ = -1;
};

TEST_F(DaemonTest, HealthAndStatsAnswerInline) {
  Start();
  ServiceClient c;
  ASSERT_TRUE(Connect(c));
  ASSERT_TRUE(c.send_line("{\"verb\":\"health\",\"tag\":\"h1\"}"));
  JsonValue v;
  ASSERT_TRUE(ReadJson(c, v));
  EXPECT_EQ(EventOf(v), "health");
  ASSERT_NE(v.find("status"), nullptr);
  EXPECT_EQ(v.find("status")->string, "serving");
  ASSERT_NE(v.find("tag"), nullptr);
  EXPECT_EQ(v.find("tag")->string, "h1");
  EXPECT_DOUBLE_EQ(v.find("queue_depth")->number, 0.0);

  ASSERT_TRUE(c.send_line("{\"verb\":\"stats\"}"));
  ASSERT_TRUE(ReadJson(c, v));
  EXPECT_EQ(EventOf(v), "stats");
  for (const char* key :
       {"admitted", "rejected_overloaded", "rejected_draining",
        "protocol_errors", "completed", "failed", "cancelled",
        "deadline_expired", "connections_total", "queue_wait_ms_mean",
        "run_ms_mean"})
    EXPECT_NE(v.find(key), nullptr) << "stats missing " << key;

  // Zero-request round-trip: not a single request has finished, so the
  // latency means must be real JSON zeros. A naive sum/count would be
  // 0/0 = NaN, which json_number renders as null — ServiceStats'
  // guarded mean helpers are what keep these numeric.
  for (const char* key : {"queue_wait_ms_mean", "run_ms_mean"}) {
    const JsonValue* mean = v.find(key);
    ASSERT_NE(mean, nullptr);
    ASSERT_TRUE(mean->is_number()) << key << " is not a number (NaN->null?)";
    EXPECT_DOUBLE_EQ(mean->number, 0.0) << key;
  }
}

TEST_F(DaemonTest, UnknownExperimentRejectedDaemonKeepsServing) {
  Start();
  ServiceClient c;
  ASSERT_TRUE(Connect(c));
  ASSERT_TRUE(
      c.send_line("{\"verb\":\"run\",\"ids\":[\"no-such-experiment\"]}"));
  JsonValue v;
  ASSERT_TRUE(ReadTerminal(c, v));
  EXPECT_EQ(EventOf(v), "error");
  EXPECT_EQ(CodeOf(v), err::kUnknownExperiment);

  ASSERT_TRUE(c.send_line(
      "{\"verb\":\"grid\",\"kernel\":\"gauss:600\",\"machine\":\"iris\","
      "\"schedulers\":\"NOT-A-SCHEDULER\",\"procs\":\"1\"}"));
  ASSERT_TRUE(ReadTerminal(c, v));
  EXPECT_EQ(EventOf(v), "error");
  EXPECT_EQ(CodeOf(v), err::kBadGrid);

  ASSERT_TRUE(c.send_line("{\"verb\":\"health\"}"));
  ASSERT_TRUE(ReadJson(c, v));
  EXPECT_EQ(EventOf(v), "health");
}

TEST_F(DaemonTest, GridRunsToDoneWithCsv) {
  Start();
  ServiceClient c;
  ASSERT_TRUE(Connect(c));
  ASSERT_TRUE(c.send_line(std::string(kFastGrid) + ",\"tag\":\"g1\"}"));

  JsonValue v;
  ASSERT_TRUE(ReadJson(c, v));
  EXPECT_EQ(EventOf(v), "accepted");
  ASSERT_NE(v.find("request"), nullptr);

  ASSERT_TRUE(ReadTerminal(c, v));
  ASSERT_EQ(EventOf(v), "done") << "code=" << CodeOf(v);
  ASSERT_NE(v.find("ok"), nullptr);
  EXPECT_TRUE(v.find("ok")->boolean);
  EXPECT_EQ(v.find("tag")->string, "g1");
  const JsonValue* experiments = v.find("experiments");
  ASSERT_NE(experiments, nullptr);
  ASSERT_EQ(experiments->array.size(), 1u);
  const JsonValue& exp = experiments->array[0];
  EXPECT_DOUBLE_EQ(exp.find("exit")->number, 0.0);
  const JsonValue* csvs = exp.find("csv");
  ASSERT_NE(csvs, nullptr);
  ASSERT_FALSE(csvs->array.empty());
  for (const JsonValue& path : csvs->array)
    EXPECT_TRUE(std::filesystem::exists(path.string))
        << "reported CSV missing on disk: " << path.string;
}

TEST_F(DaemonTest, GarbageFramesAnsweredConnectionIsolated) {
  Start();
  ServiceClient hostile, polite;
  ASSERT_TRUE(Connect(hostile));
  ASSERT_TRUE(Connect(polite));

  JsonValue v;
  ASSERT_TRUE(hostile.send_raw("\xff\xfe\n"));
  ASSERT_TRUE(ReadJson(hostile, v));
  EXPECT_EQ(CodeOf(v), err::kBadUtf8);

  ASSERT_TRUE(hostile.send_raw("this is not json\n"));
  ASSERT_TRUE(ReadJson(hostile, v));
  EXPECT_EQ(CodeOf(v), err::kBadJson);

  ASSERT_TRUE(hostile.send_raw("{\"verb\":\"zap\"}\n"));
  ASSERT_TRUE(ReadJson(hostile, v));
  EXPECT_EQ(CodeOf(v), err::kUnknownVerb);

  ASSERT_TRUE(hostile.send_raw(std::string(kMaxFrameBytes + 100, 'a') + "\n"));
  ASSERT_TRUE(ReadJson(hostile, v));
  EXPECT_EQ(CodeOf(v), err::kFrameTooLong);

  // Four strikes is unlucky, not hostile: the connection still serves.
  ASSERT_TRUE(hostile.send_line("{\"verb\":\"health\"}"));
  ASSERT_TRUE(ReadJson(hostile, v));
  EXPECT_EQ(EventOf(v), "health");

  // An endless garbage flood exhausts the strike budget and gets the
  // connection torn down...
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(hostile.send_raw("garbage\n"));
  bool saw_eof = false;
  for (int i = 0; i < 40; ++i) {
    std::string line;
    if (!hostile.read_line(line, 5.0)) {
      saw_eof = true;
      break;
    }
  }
  EXPECT_TRUE(saw_eof) << "hostile connection was never torn down";

  // ...while the polite client on the same daemon never notices.
  ASSERT_TRUE(polite.send_line("{\"verb\":\"health\"}"));
  ASSERT_TRUE(ReadJson(polite, v));
  EXPECT_EQ(EventOf(v), "health");
  EXPECT_GE(daemon_->stats().protocol_errors.load(), 5);
  EXPECT_GE(daemon_->stats().connections_torn_down.load(), 1);
}

TEST_F(DaemonTest, DeadlineExpiresMidRun) {
  Start();
  ServiceClient c;
  ASSERT_TRUE(Connect(c));
  ASSERT_TRUE(c.send_line(std::string(kSlowGrid) + ",\"deadline\":0.3}"));
  JsonValue v;
  ASSERT_TRUE(ReadTerminal(c, v));
  EXPECT_EQ(EventOf(v), "error");
  EXPECT_EQ(CodeOf(v), err::kDeadlineExpired);
  EXPECT_EQ(daemon_->stats().deadline_expired.load(), 1);

  // The expiry cancelled that request's token only: the daemon (and its
  // shared pool) take the next request unpoisoned.
  ASSERT_TRUE(c.send_line(std::string(kFastGrid) + "}"));
  ASSERT_TRUE(ReadTerminal(c, v));
  EXPECT_EQ(EventOf(v), "done") << "code=" << CodeOf(v);
}

TEST_F(DaemonTest, FullQueueRejectsWithOverloaded) {
  Start([](DaemonOptions& o) {
    o.max_queue = 1;
    o.drain_timeout = 0.2;
  });
  ServiceClient c;
  ASSERT_TRUE(Connect(c));

  // First request: admitted, then picked up by the dispatcher.
  ASSERT_TRUE(c.send_line(std::string(kSlowGrid) + ",\"tag\":\"t1\"}"));
  JsonValue v;
  ASSERT_TRUE(ReadJson(c, v));
  ASSERT_EQ(EventOf(v), "accepted");

  // Wait until it is in flight (queue drained) so the next two requests
  // deterministically hit: queued, then bounced.
  ServiceClient probe;
  ASSERT_TRUE(Connect(probe));
  const auto deadline = steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    ASSERT_LT(steady_clock::now(), deadline) << "request never dispatched";
    ASSERT_TRUE(probe.send_line("{\"verb\":\"health\"}"));
    JsonValue h;
    ASSERT_TRUE(ReadJson(probe, h));
    if (h.find("queue_depth")->number == 0.0 &&
        h.find("in_flight")->number == 1.0)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  ASSERT_TRUE(c.send_line(std::string(kSlowGrid) + ",\"tag\":\"t2\"}"));
  ASSERT_TRUE(ReadNonLog(c, v));
  EXPECT_EQ(EventOf(v), "accepted");

  ASSERT_TRUE(c.send_line(std::string(kSlowGrid) + ",\"tag\":\"t3\"}"));
  ASSERT_TRUE(ReadNonLog(c, v));
  EXPECT_EQ(EventOf(v), "error");
  EXPECT_EQ(CodeOf(v), err::kOverloaded);
  EXPECT_EQ(daemon_->stats().rejected_overloaded.load(), 1);

  // Drain: the in-flight request is cancelled after the (short) drain
  // timeout, the queued one is cancelled when popped, and both report it.
  daemon_->request_drain();
  int cancelled = 0;
  while (cancelled < 2) {
    ASSERT_TRUE(ReadTerminal(c, v)) << "missing cancelled response";
    EXPECT_EQ(EventOf(v), "error");
    EXPECT_EQ(CodeOf(v), err::kCancelled);
    ++cancelled;
  }
  Drain();
  EXPECT_EQ(rc_, 0);
  EXPECT_EQ(daemon_->stats().cancelled.load(), 2);
}

TEST_F(DaemonTest, ShutdownVerbDrainsAndServeReturnsZero) {
  Start();
  ServiceClient c;
  ASSERT_TRUE(Connect(c));
  ASSERT_TRUE(c.send_line("{\"verb\":\"shutdown\",\"tag\":\"bye\"}"));
  JsonValue v;
  ASSERT_TRUE(ReadJson(c, v));
  EXPECT_EQ(EventOf(v), "shutting_down");
  EXPECT_EQ(v.find("tag")->string, "bye");
  serve_thread_.join();
  EXPECT_EQ(rc_, 0);
}

TEST_F(DaemonTest, DisconnectCancelsInFlightOthersUnaffected) {
  Start();
  {
    ServiceClient doomed;
    ASSERT_TRUE(Connect(doomed));
    ASSERT_TRUE(doomed.send_line(std::string(kSlowGrid) + "}"));
    JsonValue v;
    ASSERT_TRUE(ReadJson(doomed, v));
    ASSERT_EQ(EventOf(v), "accepted");
    doomed.close();  // client vanishes mid-run
  }

  // The daemon notices the dead peer, cancels the request's token, and
  // accounts it as cancelled — while staying responsive to everyone else.
  ServiceClient c;
  ASSERT_TRUE(Connect(c));
  JsonValue v;
  ASSERT_TRUE(c.send_line("{\"verb\":\"health\"}"));
  ASSERT_TRUE(ReadJson(c, v, 5.0));
  EXPECT_EQ(EventOf(v), "health");

  const auto deadline = steady_clock::now() + std::chrono::seconds(30);
  while (daemon_->stats().cancelled.load() < 1) {
    ASSERT_LT(steady_clock::now(), deadline)
        << "disconnected client's request was never cancelled";
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  ASSERT_TRUE(c.send_line(std::string(kFastGrid) + "}"));
  ASSERT_TRUE(ReadTerminal(c, v));
  EXPECT_EQ(EventOf(v), "done") << "code=" << CodeOf(v);
}

}  // namespace
}  // namespace afs::service
