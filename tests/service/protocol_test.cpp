// Robustness tests for the sweep-service wire layer: the strict JSON
// parser, the line framer's bounded buffering + resynchronization, and
// parse_request's error taxonomy. The property/fuzz sections are
// deterministic (fixed-seed PRNG): a failure reproduces byte-for-byte.
#include "service/protocol.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "service/json.hpp"

namespace afs::service {
namespace {

// ---------------------------------------------------------------- JSON --

JsonValue parse_ok(const std::string& text) {
  JsonValue v;
  std::string err;
  EXPECT_TRUE(parse_json(text, v, err)) << text << " -> " << err;
  return v;
}

void expect_parse_fail(const std::string& text) {
  JsonValue v;
  std::string err;
  EXPECT_FALSE(parse_json(text, v, err)) << "accepted: " << text;
  EXPECT_FALSE(err.empty());
}

TEST(Json, ParsesScalarsAndContainers) {
  EXPECT_TRUE(parse_ok("null").is_null());
  EXPECT_TRUE(parse_ok("true").boolean);
  EXPECT_FALSE(parse_ok("false").boolean);
  EXPECT_DOUBLE_EQ(parse_ok("-12.5e2").number, -1250.0);
  EXPECT_EQ(parse_ok("\"a\\nb\"").string, "a\nb");
  EXPECT_EQ(parse_ok("[1,2,3]").array.size(), 3u);
  const JsonValue obj = parse_ok(" {\"a\": 1, \"b\": [true, null]} ");
  ASSERT_TRUE(obj.is_object());
  ASSERT_NE(obj.find("b"), nullptr);
  EXPECT_EQ(obj.find("b")->array.size(), 2u);
  EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(Json, DuplicateKeysFirstWins) {
  const JsonValue obj = parse_ok("{\"k\":1,\"k\":2}");
  ASSERT_NE(obj.find("k"), nullptr);
  EXPECT_DOUBLE_EQ(obj.find("k")->number, 1.0);
}

TEST(Json, UnicodeEscapes) {
  EXPECT_EQ(parse_ok("\"\\u0041\"").string, "A");
  EXPECT_EQ(parse_ok("\"\\u00e9\"").string, "\xc3\xa9");          // é
  EXPECT_EQ(parse_ok("\"\\ud83d\\ude00\"").string, "\xf0\x9f\x98\x80");
  expect_parse_fail("\"\\ud83d\"");        // unpaired high surrogate
  expect_parse_fail("\"\\ude00\"");        // lone low surrogate
  expect_parse_fail("\"\\ud83d\\u0041\"");  // high + non-low
  expect_parse_fail("\"\\uzzzz\"");
}

TEST(Json, RejectsMalformedNumbers) {
  for (const char* bad : {"01", "1.", ".5", "+1", "1e", "1e+", "-", "--1",
                          "0x10", "NaN", "Infinity", "1.2.3"})
    expect_parse_fail(bad);
  EXPECT_DOUBLE_EQ(parse_ok("0").number, 0.0);
  EXPECT_DOUBLE_EQ(parse_ok("-0.5e-2").number, -0.005);
}

TEST(Json, RejectsTrailingGarbageAndControlChars) {
  expect_parse_fail("{} {}");
  expect_parse_fail("1 2");
  expect_parse_fail("\"a\nb\"");           // raw newline inside a string
  expect_parse_fail(std::string("\"a\x01b\""));
}

TEST(Json, RejectsInvalidUtf8Everywhere) {
  expect_parse_fail("\"\xff\"");
  expect_parse_fail("\"\xc0\x80\"");        // overlong NUL
  expect_parse_fail("\"\xed\xa0\x80\"");    // surrogate code point
  expect_parse_fail("\"\xf4\x90\x80\x80\"");  // above U+10FFFF
  expect_parse_fail(std::string("{\"\x80\":1}"));
  EXPECT_FALSE(valid_utf8("\xc3"));         // truncated sequence
  EXPECT_TRUE(valid_utf8("\xc3\xa9 ok \xf0\x9f\x98\x80"));
}

TEST(Json, DepthBounded) {
  // The parser admits kMaxJsonDepth+1 nesting levels (the top-level value
  // starts at depth 0); one more must fail instead of recursing away.
  std::string ok;
  for (int i = 0; i <= kMaxJsonDepth; ++i) ok += '[';
  for (int i = 0; i <= kMaxJsonDepth; ++i) ok += ']';
  parse_ok(ok);
  expect_parse_fail("[" + ok + "]");
  expect_parse_fail(std::string(4096, '['));  // hostile deep open
}

TEST(Json, EveryPrefixOfAValidDocumentFailsCleanly) {
  const std::string doc =
      "{\"verb\":\"grid\",\"kernel\":\"gauss:64\",\"procs\":[1,2,4],"
      "\"deadline\":1.5,\"tag\":\"a\\u0041\",\"nested\":[{\"x\":null}]}";
  parse_ok(doc);
  for (std::size_t n = 0; n < doc.size(); ++n) {
    JsonValue v;
    std::string err;
    EXPECT_FALSE(parse_json(doc.substr(0, n), v, err))
        << "prefix of length " << n << " accepted";
  }
}

TEST(Json, QuoteRoundTripsArbitraryBytes) {
  // Every UTF-8-valid string, including control characters, must survive
  // quote -> parse, and the quoted form must be frame-safe (no raw '\n').
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int round = 0; round < 200; ++round) {
    std::string s;
    const int len = static_cast<int>(next() % 40);
    for (int i = 0; i < len; ++i)
      s += static_cast<char>(next() % 128);  // ASCII incl. control chars
    const std::string quoted = json_quote(s);
    EXPECT_EQ(quoted.find('\n'), std::string::npos);
    EXPECT_EQ(parse_ok(quoted).string, s);
  }
}

TEST(Json, NumberRoundTrips) {
  for (const double v : {0.0, 1.0, -1.0, 0.1, 1e300, -2.5e-17,
                         12345678901234.0, 3.141592653589793}) {
    const JsonValue parsed = parse_ok(json_number(v));
    EXPECT_EQ(parsed.number, v) << json_number(v);
  }
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
}

// -------------------------------------------------------------- framer --

TEST(Framer, SplitsFramesAcrossArbitraryFeeds) {
  const std::string stream = "alpha\n\nbeta gamma\n{\"k\":1}\n";
  const std::vector<std::string> want = {"alpha", "", "beta gamma",
                                         "{\"k\":1}"};
  // Feed in every chunk size from 1 byte up: framing must not depend on
  // how the kernel happens to segment reads.
  for (std::size_t chunk = 1; chunk <= stream.size(); ++chunk) {
    LineFramer framer;
    for (std::size_t off = 0; off < stream.size(); off += chunk)
      framer.feed(stream.data() + off, std::min(chunk, stream.size() - off));
    std::vector<std::string> got;
    std::string frame;
    while (framer.next_frame(frame)) got.push_back(frame);
    EXPECT_EQ(got, want) << "chunk=" << chunk;
    EXPECT_EQ(framer.pending_bytes(), 0u);
  }
}

TEST(Framer, OversizedLineOneErrorThenResync) {
  LineFramer framer(16);
  const std::string input = std::string(100, 'x') + "\nok\n";
  framer.feed(input.data(), input.size());
  ProtocolError e;
  std::string frame;
  ASSERT_TRUE(framer.next_error(e));
  EXPECT_EQ(e.code, err::kFrameTooLong);
  EXPECT_FALSE(framer.next_error(e));  // exactly one error per long line
  ASSERT_TRUE(framer.next_frame(frame));
  EXPECT_EQ(frame, "ok");
}

TEST(Framer, BoundedBufferingWhileSkipping) {
  LineFramer framer(16);
  // A hostile client streaming an endless line must not grow our memory:
  // after the error fires, everything up to the next newline is dropped.
  const std::string flood(4096, 'z');
  for (int i = 0; i < 100; ++i) framer.feed(flood.data(), flood.size());
  EXPECT_EQ(framer.pending_bytes(), 0u);
  ProtocolError e;
  ASSERT_TRUE(framer.next_error(e));
  EXPECT_FALSE(framer.next_error(e));
  framer.feed("\nafter\n", 7);
  std::string frame;
  ASSERT_TRUE(framer.next_frame(frame));
  EXPECT_EQ(frame, "after");
}

TEST(Framer, ErrorsAndFramesKeepStreamOrder) {
  LineFramer framer(4);
  const std::string input = "ab\ntoolong\ncd\n";
  framer.feed(input.data(), input.size());
  std::string frame;
  ProtocolError e;
  ASSERT_TRUE(framer.next_frame(frame));
  EXPECT_EQ(frame, "ab");
  EXPECT_FALSE(framer.next_frame(frame));  // error is next in order
  ASSERT_TRUE(framer.next_error(e));
  ASSERT_TRUE(framer.next_frame(frame));
  EXPECT_EQ(frame, "cd");
}

// ------------------------------------------------------- parse_request --

ProtocolError expect_request_fail(const std::string& frame,
                                  const std::string& want_code) {
  Request r;
  ProtocolError e;
  EXPECT_FALSE(parse_request(frame, r, e)) << "accepted: " << frame;
  EXPECT_EQ(e.code, want_code) << frame << " -> " << e.message;
  return e;
}

TEST(ParseRequest, ValidVerbs) {
  Request r;
  ProtocolError e;
  ASSERT_TRUE(parse_request(
      "{\"verb\":\"run\",\"ids\":[\"fig04\",\"tab2\"],\"deadline\":30,"
      "\"tag\":\"c1\"}",
      r, e));
  EXPECT_EQ(r.verb, Verb::kRun);
  EXPECT_EQ(r.ids, (std::vector<std::string>{"fig04", "tab2"}));
  EXPECT_DOUBLE_EQ(r.deadline, 30.0);
  EXPECT_EQ(r.tag, "c1");

  ASSERT_TRUE(parse_request("{\"verb\":\"run\",\"all\":true}", r, e));
  EXPECT_TRUE(r.all);

  ASSERT_TRUE(parse_request(
      "{\"verb\":\"grid\",\"kernel\":\"gauss:256\",\"machine\":\"iris\","
      "\"schedulers\":\"AFS,GSS\",\"procs\":[1,2,4],\"perturb\":\"seed=7\"}",
      r, e));
  EXPECT_EQ(r.verb, Verb::kGrid);
  EXPECT_EQ(r.procs, "1,2,4");  // array normalized to the CLI string form

  for (const char* v : {"stats", "health", "shutdown"}) {
    ASSERT_TRUE(
        parse_request(std::string("{\"verb\":\"") + v + "\"}", r, e));
  }
}

TEST(ParseRequest, ErrorTaxonomyIsStable) {
  expect_request_fail("\xff\xfe", err::kBadUtf8);
  expect_request_fail("{\"verb\":", err::kBadJson);
  expect_request_fail("[1,2,3]", err::kBadJson);
  expect_request_fail("{\"verb\":\"launch\"}", err::kUnknownVerb);
  expect_request_fail("{}", err::kBadRequest);              // no verb
  expect_request_fail("{\"verb\":42}", err::kBadRequest);   // non-string verb
  expect_request_fail("{\"verb\":\"run\",\"idz\":[\"fig04\"]}",
                      err::kBadRequest);  // unknown field
  expect_request_fail("{\"verb\":\"stats\",\"ids\":[\"x\"]}",
                      err::kBadRequest);  // field from another verb
}

TEST(ParseRequest, RunNeedsExactlyOneSelection) {
  expect_request_fail("{\"verb\":\"run\"}", err::kBadRequest);
  expect_request_fail("{\"verb\":\"run\",\"all\":false}", err::kBadRequest);
  expect_request_fail("{\"verb\":\"run\",\"ids\":[]}", err::kBadRequest);
  expect_request_fail("{\"verb\":\"run\",\"ids\":[\"fig04\"],\"all\":true}",
                      err::kBadRequest);
  expect_request_fail("{\"verb\":\"run\",\"ids\":[\"\"]}", err::kBadRequest);
  expect_request_fail("{\"verb\":\"run\",\"ids\":[1]}", err::kBadRequest);
}

TEST(ParseRequest, DeadlineBounds) {
  // deadline=0 is an explicit rejection, not "no deadline": the daemon's
  // default is selected by omitting the field.
  expect_request_fail("{\"verb\":\"run\",\"all\":true,\"deadline\":0}",
                      err::kBadRequest);
  expect_request_fail("{\"verb\":\"run\",\"all\":true,\"deadline\":-1}",
                      err::kBadRequest);
  expect_request_fail("{\"verb\":\"run\",\"all\":true,\"deadline\":86401}",
                      err::kBadRequest);
  expect_request_fail(
      "{\"verb\":\"run\",\"all\":true,\"deadline\":\"soon\"}",
      err::kBadRequest);
  Request r;
  ProtocolError e;
  ASSERT_TRUE(parse_request(
      "{\"verb\":\"run\",\"all\":true,\"deadline\":86400}", r, e));
}

TEST(ParseRequest, GridValidation) {
  expect_request_fail("{\"verb\":\"grid\"}", err::kBadRequest);
  expect_request_fail(
      "{\"verb\":\"grid\",\"kernel\":\"gauss:64\",\"machine\":\"iris\"}",
      err::kBadRequest);  // schedulers missing
  expect_request_fail(
      "{\"verb\":\"grid\",\"kernel\":\"\",\"machine\":\"iris\","
      "\"schedulers\":\"AFS\"}",
      err::kBadRequest);  // empty string field
  expect_request_fail(
      "{\"verb\":\"grid\",\"kernel\":\"gauss:64\",\"machine\":\"iris\","
      "\"schedulers\":\"AFS\",\"procs\":[1.5]}",
      err::kBadRequest);
  expect_request_fail(
      "{\"verb\":\"grid\",\"kernel\":\"gauss:64\",\"machine\":\"iris\","
      "\"schedulers\":\"AFS\",\"procs\":[]}",
      err::kBadRequest);
}

TEST(ParseRequest, TagBounded) {
  const std::string long_tag(257, 't');
  expect_request_fail(
      "{\"verb\":\"stats\",\"tag\":\"" + long_tag + "\"}", err::kBadRequest);
  Request r;
  ProtocolError e;
  ASSERT_TRUE(parse_request(
      "{\"verb\":\"stats\",\"tag\":\"" + std::string(256, 't') + "\"}", r,
      e));
}

TEST(ParseRequest, FuzzedGarbageNeverCrashesAndAlwaysClassifies) {
  // Deterministic garbage: random bytes, random mutations of a valid
  // request, random truncations. Every input must either parse or yield
  // an error code from the taxonomy — never crash, never an empty code.
  const std::string seed_doc =
      "{\"verb\":\"grid\",\"kernel\":\"gauss:64\",\"machine\":\"iris\","
      "\"schedulers\":\"AFS,GSS\",\"procs\":[1,2,4],\"deadline\":5,"
      "\"tag\":\"fuzz\"}";
  std::uint64_t state = 0x243f6a8885a308d3ULL;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  const std::vector<std::string> known_codes = {
      err::kBadUtf8, err::kBadJson, err::kUnknownVerb, err::kBadRequest};
  int failures = 0;
  for (int round = 0; round < 2000; ++round) {
    std::string input;
    switch (round % 3) {
      case 0: {  // pure random bytes
        const int len = static_cast<int>(next() % 64);
        for (int i = 0; i < len; ++i)
          input += static_cast<char>(next() % 256);
        break;
      }
      case 1: {  // mutate a valid request
        input = seed_doc;
        const int flips = 1 + static_cast<int>(next() % 4);
        for (int i = 0; i < flips; ++i)
          input[next() % input.size()] = static_cast<char>(next() % 256);
        break;
      }
      default:  // truncate a valid request
        input = seed_doc.substr(0, next() % seed_doc.size());
        break;
    }
    Request r;
    ProtocolError e;
    if (!parse_request(input, r, e)) {
      ++failures;
      EXPECT_NE(std::find(known_codes.begin(), known_codes.end(), e.code),
                known_codes.end())
          << "unknown code '" << e.code << "' for input: " << input;
    }
  }
  EXPECT_GT(failures, 1000);  // the generator really is hostile
}

TEST(ResponseLine, ShapesAndTagEcho) {
  const std::string line = response_line(
      "accepted", {{"request", json_number(7)}, {"queue_depth", "3"}}, "t1");
  EXPECT_EQ(line.back(), '\n');
  JsonValue v;
  std::string jerr;
  ASSERT_TRUE(parse_json(std::string(line.data(), line.size() - 1), v, jerr));
  EXPECT_EQ(v.find("event")->string, "accepted");
  EXPECT_DOUBLE_EQ(v.find("request")->number, 7.0);
  EXPECT_EQ(v.find("tag")->string, "t1");

  const std::string err_line =
      response_error({err::kOverloaded, "queue full"}, "", 9);
  ASSERT_TRUE(
      parse_json(std::string(err_line.data(), err_line.size() - 1), v, jerr));
  EXPECT_EQ(v.find("event")->string, "error");
  EXPECT_EQ(v.find("code")->string, err::kOverloaded);
  EXPECT_EQ(v.find("tag"), nullptr);  // empty tag omitted
}

}  // namespace
}  // namespace afs::service
