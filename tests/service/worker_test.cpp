// Tests for the supervised worker sandbox (--isolation=process): cells run
// in forked subprocesses bit-identically to in-process runs, a crashing
// cell kills one worker (which the supervisor replaces and classifies),
// repeat offenders are quarantined as poison, an exhausted restart budget
// degrades the pool to cache-only mode, and deadlines kill workers without
// charging the cell a strike.
//
// The pool re-execs *this* test binary as the worker: main() below
// dispatches argv[1] == "afs-worker-main" into worker_main() before gtest
// ever initializes, so WorkerPoolOptions{args={"afs-worker-main"}} turns
// any test process into its own sandbox fleet.
#include "service/worker.hpp"

#include <stdlib.h>

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "experiments/grid.hpp"
#include "experiments/registry.hpp"
#include "runtime/cell_executor.hpp"
#include "runtime/sweep_runner.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "util/cancel.hpp"
#include "util/check.hpp"

namespace afs::service {
namespace {

namespace fs = std::filesystem;

/// Keeps AFS_CRASH_CELL scoped to one test: the hook aborts whatever
/// process simulates the named cell, so leaking it across tests (or into
/// an in-process batch run) would abort the test binary itself.
class ScopedCrashCell {
 public:
  explicit ScopedCrashCell(const std::string& spec) {
    ::setenv("AFS_CRASH_CELL", spec.c_str(), 1);
  }
  ~ScopedCrashCell() { ::unsetenv("AFS_CRASH_CELL"); }
};

/// The recipe every pool test ships: a small ad-hoc grid (gauss:64 on the
/// iris) — cheap, deterministic, and exercising the same wire fields as
/// real requests.
CellExecSpec small_grid_spec() {
  CellExecSpec spec;
  spec.kernel = "gauss:64";
  spec.machine = "iris";
  spec.schedulers = "SS,GSS,AFS";
  spec.procs = {1, 2, 4};
  return spec;
}

GridSpec small_grid() {
  GridSpec g;
  g.kernel = "gauss:64";
  g.machine = "iris";
  g.schedulers = "SS,GSS,AFS";
  g.procs = {1, 2, 4};
  return g;
}

WorkerPoolOptions test_pool_options(int workers = 1) {
  WorkerPoolOptions o;
  o.workers = workers;
  o.args = {"afs-worker-main"};  // exe defaults to /proc/self/exe
  return o;
}

SimResult in_process_cell(const std::string& label, int procs) {
  const FigureSpec spec = make_grid_experiment(small_grid()).make_spec();
  for (const SchedulerEntry& se : spec.schedulers)
    if (se.label == label)
      return run_figure_cell(spec, se, procs, spec.sim_options);
  throw std::runtime_error("no scheduler labelled " + label);
}

TEST(WorkerPool, CellResultsAreBitIdenticalToInProcess) {
  WorkerPool pool(test_pool_options(2));
  std::string error;
  ASSERT_TRUE(pool.start(error)) << error;

  const CancelToken token;
  for (const std::string label : {"SS", "GSS", "AFS"})
    for (int p : {1, 2, 4}) {
      const SimResult sandboxed = pool.execute(
          small_grid_spec(), label, p, EngineToggles{false, true}, token);
      EXPECT_EQ(serialize_sim_result(sandboxed),
                serialize_sim_result(in_process_cell(label, p)))
          << label << " P=" << p;
    }

  const WorkerPoolStats s = pool.stats();
  EXPECT_EQ(s.cells_executed, 9);
  EXPECT_EQ(s.crashes, 0);
  EXPECT_EQ(s.poisoned, 0);
  EXPECT_FALSE(s.degraded);
  EXPECT_EQ(s.live, 2);
}

TEST(WorkerPool, BadRecipesFailStructurallyWithoutKillingWorkers) {
  WorkerPool pool(test_pool_options());
  std::string error;
  ASSERT_TRUE(pool.start(error)) << error;
  const CancelToken token;

  // Unknown scheduler label: the worker reports it; the worker survives.
  EXPECT_THROW(pool.execute(small_grid_spec(), "NOT-A-SCHEDULER", 2, EngineToggles{false, true}, token),
               std::runtime_error);
  // P beyond the machine: same.
  EXPECT_THROW(pool.execute(small_grid_spec(), "SS", 10'000, EngineToggles{false, true},
                            token),
               std::runtime_error);
  // Unknown registered experiment id: same.
  CellExecSpec unknown;
  unknown.experiment = "no-such-experiment";
  EXPECT_THROW(pool.execute(unknown, "SS", 1, EngineToggles{false, true}, token),
               std::runtime_error);

  const WorkerPoolStats s = pool.stats();
  EXPECT_EQ(s.crashes, 0) << "structured failures must not kill workers";
  EXPECT_EQ(s.live, 1);

  // And the same worker still executes real cells afterwards.
  EXPECT_EQ(serialize_sim_result(
                pool.execute(small_grid_spec(), "SS", 1, EngineToggles{false, true}, token)),
            serialize_sim_result(in_process_cell("SS", 1)));
}

TEST(WorkerPool, CrashIsClassifiedAndTheWorkerReplaced) {
  const ScopedCrashCell crash("grid:GSS:2");
  WorkerPool pool(test_pool_options());
  std::string error;
  ASSERT_TRUE(pool.start(error)) << error;
  const CancelToken token;

  try {
    pool.execute(small_grid_spec(), "GSS", 2, EngineToggles{false, true}, token);
    FAIL() << "crashing cell must throw";
  } catch (const PoisonedCellError&) {
    FAIL() << "first crash is a strike, not a quarantine";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("SIGABRT"), std::string::npos)
        << "kill must be classified: " << e.what();
  }

  WorkerPoolStats s = pool.stats();
  EXPECT_EQ(s.crashes, 1);
  EXPECT_EQ(s.poisoned, 0);

  // The supervisor respawns on demand; a healthy cell goes through.
  EXPECT_EQ(serialize_sim_result(
                pool.execute(small_grid_spec(), "SS", 1, EngineToggles{false, true}, token)),
            serialize_sim_result(in_process_cell("SS", 1)));
  s = pool.stats();
  EXPECT_EQ(s.live, 1);
  EXPECT_GE(s.spawned, 2);
}

TEST(WorkerPool, RepeatOffenderIsQuarantinedAsPoison) {
  const ScopedCrashCell crash("grid:GSS:2");
  WorkerPoolOptions opts = test_pool_options();
  opts.poison_strikes = 3;
  WorkerPool pool(opts);
  std::string error;
  ASSERT_TRUE(pool.start(error)) << error;
  const CancelToken token;

  // Strikes 1 and 2 are transient crashes; strike 3 quarantines.
  EXPECT_THROW(pool.execute(small_grid_spec(), "GSS", 2, EngineToggles{false, true}, token),
               std::runtime_error);
  EXPECT_THROW(pool.execute(small_grid_spec(), "GSS", 2, EngineToggles{false, true}, token),
               std::runtime_error);
  EXPECT_THROW(pool.execute(small_grid_spec(), "GSS", 2, EngineToggles{false, true}, token),
               PoisonedCellError);
  EXPECT_EQ(pool.stats().crashes, 3);

  // Blacklisted for the pool's lifetime: answered without burning another
  // worker, under the stable cell id.
  EXPECT_THROW(pool.execute(small_grid_spec(), "GSS", 2, EngineToggles{false, true}, token),
               PoisonedCellError);
  EXPECT_EQ(pool.stats().crashes, 3);
  EXPECT_EQ(pool.stats().poisoned, 1);
  const std::vector<std::string> poisoned = pool.poisoned_cells();
  ASSERT_EQ(poisoned.size(), 1u);
  EXPECT_EQ(poisoned[0],
            WorkerPool::cell_id(small_grid_spec(), "GSS", 2));

  // The quarantine is per-cell: its neighbours still execute.
  EXPECT_EQ(serialize_sim_result(
                pool.execute(small_grid_spec(), "GSS", 4, EngineToggles{false, true}, token)),
            serialize_sim_result(in_process_cell("GSS", 4)));
}

TEST(WorkerPool, ExhaustedRestartBudgetDegradesToCacheOnly) {
  const ScopedCrashCell crash("grid:GSS:2");
  WorkerPoolOptions opts = test_pool_options();
  opts.restart_burst = 0.0;  // initial spawns are free; respawns are not
  opts.restart_refill_per_s = 0.0;
  WorkerPool pool(opts);
  std::string error;
  ASSERT_TRUE(pool.start(error)) << error;
  const CancelToken token;
  EXPECT_FALSE(pool.degraded());

  // The crash takes the only worker; the empty bucket refuses a respawn.
  EXPECT_THROW(pool.execute(small_grid_spec(), "GSS", 2, EngineToggles{false, true}, token),
               std::runtime_error);
  EXPECT_THROW(pool.execute(small_grid_spec(), "SS", 1, EngineToggles{false, true}, token),
               DegradedError);

  EXPECT_TRUE(pool.degraded());
  const WorkerPoolStats s = pool.stats();
  EXPECT_EQ(s.live, 0);
  EXPECT_GE(s.restarts_denied, 1);
}

TEST(WorkerPool, PreCancelledTokenNeverReachesAWorker) {
  WorkerPool pool(test_pool_options());
  std::string error;
  ASSERT_TRUE(pool.start(error)) << error;

  CancelToken token;
  token.cancel();
  EXPECT_THROW(pool.execute(small_grid_spec(), "SS", 1, EngineToggles{false, true}, token),
               CancelledError);
  const WorkerPoolStats s = pool.stats();
  EXPECT_EQ(s.crashes, 0);
  EXPECT_EQ(s.deadline_kills, 0);
  EXPECT_EQ(s.live, 1);
}

TEST(WorkerPool, DeadlineKillsTheWorkerWithoutAStrike) {
  WorkerPool pool(test_pool_options());
  std::string error;
  ASSERT_TRUE(pool.start(error)) << error;

  // A cell slow enough (seconds) that a 50ms deadline reliably fires
  // mid-simulation.
  CellExecSpec slow;
  slow.kernel = "gauss:4000";
  slow.machine = "butterfly1";
  slow.schedulers = "SS";
  slow.procs = {1};

  CancelToken token;
  token.set_timeout(0.05);
  EXPECT_THROW(pool.execute(slow, "SS", 1, EngineToggles{false, true}, token),
               CancelledError);

  WorkerPoolStats s = pool.stats();
  EXPECT_EQ(s.deadline_kills, 1);
  EXPECT_EQ(s.crashes, 0) << "a deadline kill is not worker churn";
  EXPECT_EQ(s.poisoned, 0) << "a deadline kill is not the cell's fault";

  // The kill earned a free respawn credit: the next cell runs even with
  // an empty-looking budget.
  const CancelToken fresh;
  EXPECT_EQ(serialize_sim_result(
                pool.execute(small_grid_spec(), "SS", 1, EngineToggles{false, true}, fresh)),
            serialize_sim_result(in_process_cell("SS", 1)));
}

TEST(WorkerPool, CellIdsAreStableAndShapeSpecific) {
  CellExecSpec fig;
  fig.experiment = "fig04";
  EXPECT_EQ(WorkerPool::cell_id(fig, "AFS", 8), "fig04/AFS/P8");
  const std::string grid_id =
      WorkerPool::cell_id(small_grid_spec(), "GSS", 2);
  EXPECT_NE(grid_id.find("gauss:64"), std::string::npos);
  EXPECT_NE(grid_id.find("/GSS/P2"), std::string::npos);
  EXPECT_NE(grid_id, WorkerPool::cell_id(small_grid_spec(), "GSS", 4));
}

// ---------------------------------------------------------------------------
// The daemon seam: a request naming poisoned and healthy cells gets the
// healthy cells (byte-identical to a batch run) plus structured
// "cell_error" events for the quarantined one — and the daemon stays up.

class WorkerDaemonTest : public ::testing::Test {
 protected:
  void Start(const std::function<void(DaemonOptions&)>& tweak = nullptr) {
    dir_ = fs::path(::testing::TempDir()) /
           ("afs_worker_daemon." + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    DaemonOptions o;
    o.socket_path = (dir_ / "sock").string();
    o.out_dir = (dir_ / "out").string();
    o.no_store = true;
    o.drain_timeout = 2.0;
    o.install_signal_handlers = false;
    o.log = nullptr;
    o.isolation = "process";
    o.worker_args = {"afs-worker-main"};
    o.jobs = 2;
    if (tweak) tweak(o);
    daemon_.emplace(std::move(o));
    serve_thread_ = std::thread([this] { rc_ = daemon_->serve(); });
  }

  void TearDown() override {
    if (daemon_ && serve_thread_.joinable()) {
      daemon_->request_drain();
      serve_thread_.join();
    }
    daemon_.reset();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  bool Connect(ServiceClient& c) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    std::string error;
    while (std::chrono::steady_clock::now() < deadline) {
      if (c.connect(daemon_->options().socket_path, error)) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ADD_FAILURE() << "could not connect: " << error;
    return false;
  }

  fs::path dir_;
  std::optional<SweepDaemon> daemon_;
  std::thread serve_thread_;
  int rc_ = -1;
};

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Drops the CSV rows of one (scheduler, P) cell — "grid,GSS,2,..." —
/// keeping byte order of everything else.
std::string without_cell_rows(const std::string& csv, const std::string& label,
                              int procs) {
  const std::string prefix = "grid," + label + "," + std::to_string(procs) + ",";
  std::istringstream in(csv);
  std::string out, line;
  while (std::getline(in, line))
    if (line.compare(0, prefix.size(), prefix) != 0) out += line + "\n";
  return out;
}

TEST_F(WorkerDaemonTest, PoisonedCellIsIsolatedHealthyCellsMatchBatch) {
  // Batch ground truth first, with the crash hook OFF — the same grid run
  // in-process writes the reference grid.csv.
  const GridSpec grid = [] {
    GridSpec g;
    g.kernel = "gauss:600";
    g.machine = "butterfly1";
    g.schedulers = "SS,GSS";
    g.procs = {1, 2};
    return g;
  }();
  const fs::path batch_dir =
      fs::path(::testing::TempDir()) / "afs_worker_batch";
  fs::remove_all(batch_dir);
  fs::create_directories(batch_dir);
  {
    FigureSpec spec = make_grid_experiment(grid).make_spec();
    spec.out_dir = batch_dir.string();
    std::ostringstream quiet;
    run_figure(spec, quiet);
  }
  const std::string batch_csv = read_file(batch_dir / "grid.csv");
  ASSERT_FALSE(batch_csv.empty());

  // Now the daemon, workers inheriting a hook that aborts grid/GSS/P2.
  // poison_strikes=2 so the runner's in-request retries (3 attempts)
  // cross the quarantine threshold inside this one request.
  const ScopedCrashCell crash("grid:GSS:2");
  Start([](DaemonOptions& o) { o.poison_strikes = 2; });

  ServiceClient c;
  ASSERT_TRUE(Connect(c));
  ASSERT_TRUE(c.send_line(
      "{\"verb\":\"grid\",\"kernel\":\"gauss:600\",\"machine\":\"butterfly1\","
      "\"schedulers\":\"SS,GSS\",\"procs\":\"1,2\",\"tag\":\"mixed\"}"));

  bool saw_poison_error = false;
  std::vector<std::string> csvs;
  for (;;) {
    std::string line;
    ASSERT_TRUE(c.read_line(line, 60.0)) << "daemon hung or died mid-request";
    JsonValue v;
    std::string jerr;
    ASSERT_TRUE(parse_json(line, v, jerr)) << line;
    const JsonValue* event = v.find("event");
    ASSERT_NE(event, nullptr);
    if (event->string == "cell_error") {
      const JsonValue* code = v.find("code");
      ASSERT_NE(code, nullptr);
      EXPECT_EQ(code->string, err::kPoisonCell);
      const JsonValue* sched = v.find("scheduler");
      ASSERT_NE(sched, nullptr);
      EXPECT_EQ(sched->string, "GSS");
      EXPECT_DOUBLE_EQ(v.find("procs")->number, 2.0);
      saw_poison_error = true;
      continue;
    }
    if (event->string == "done") {
      const JsonValue* experiments = v.find("experiments");
      ASSERT_NE(experiments, nullptr);
      ASSERT_EQ(experiments->array.size(), 1u);
      if (const JsonValue* cs = experiments->array[0].find("csv"))
        for (const JsonValue& p : cs->array) csvs.push_back(p.string);
      break;
    }
    ASSERT_NE(event->string, "error") << line;
  }
  EXPECT_TRUE(saw_poison_error)
      << "quarantine must surface as a structured cell_error";

  // Healthy cells are byte-identical to the batch run; only the poisoned
  // cell's row is missing.
  ASSERT_EQ(csvs.size(), 1u);
  const std::string daemon_csv = read_file(csvs[0]);
  EXPECT_EQ(daemon_csv, without_cell_rows(batch_csv, "GSS", 2));
  EXPECT_NE(daemon_csv, batch_csv);

  // The daemon took the crashes in stride: still serving, workers alive,
  // the quarantine visible in health.
  ASSERT_TRUE(c.send_line("{\"verb\":\"health\"}"));
  std::string line;
  ASSERT_TRUE(c.read_line(line, 10.0));
  JsonValue h;
  std::string jerr;
  ASSERT_TRUE(parse_json(line, h, jerr));
  EXPECT_EQ(h.find("status")->string, "serving");
  EXPECT_EQ(h.find("isolation")->string, "process");
  // live workers may be 0 here — the pool respawns lazily on demand.
  ASSERT_NE(h.find("workers_live"), nullptr);
  EXPECT_DOUBLE_EQ(h.find("poisoned_cells")->number, 1.0);

  ASSERT_TRUE(c.send_line("{\"verb\":\"stats\"}"));
  ASSERT_TRUE(c.read_line(line, 10.0));
  JsonValue st;
  ASSERT_TRUE(parse_json(line, st, jerr));
  EXPECT_GE(st.find("worker_crashes")->number, 2.0);
  EXPECT_GE(st.find("workers_spawned")->number, 2.0);
  EXPECT_DOUBLE_EQ(st.find("poisoned_cells")->number, 1.0);

  // A repeat request gets the poison answer instantly — no fresh crashes.
  ASSERT_TRUE(c.send_line(
      "{\"verb\":\"grid\",\"kernel\":\"gauss:600\",\"machine\":\"butterfly1\","
      "\"schedulers\":\"GSS\",\"procs\":\"2\",\"tag\":\"again\"}"));
  bool saw_second_poison = false;
  for (;;) {
    ASSERT_TRUE(c.read_line(line, 30.0));
    JsonValue v;
    ASSERT_TRUE(parse_json(line, v, jerr)) << line;
    const std::string event = v.find("event")->string;
    if (event == "cell_error") {
      EXPECT_EQ(v.find("code")->string, err::kPoisonCell);
      saw_second_poison = true;
    }
    if (event == "done") break;
  }
  EXPECT_TRUE(saw_second_poison);

  // And a healthy request still runs to done — the pool respawned workers
  // on demand after the crashes.
  ASSERT_TRUE(c.send_line(
      "{\"verb\":\"grid\",\"kernel\":\"gauss:600\",\"machine\":\"butterfly1\","
      "\"schedulers\":\"SS\",\"procs\":\"1\",\"tag\":\"healthy\"}"));
  for (;;) {
    ASSERT_TRUE(c.read_line(line, 30.0));
    JsonValue v;
    ASSERT_TRUE(parse_json(line, v, jerr)) << line;
    const std::string event = v.find("event")->string;
    ASSERT_NE(event, "error") << line;
    ASSERT_NE(event, "cell_error") << line;
    if (event == "done") {
      EXPECT_TRUE(v.find("ok")->boolean);
      break;
    }
  }

  fs::remove_all(batch_dir);
}

}  // namespace
}  // namespace afs::service

int main(int argc, char** argv) {
  // Worker dispatch: the pool re-execs this binary with a marker argv to
  // turn it into a sandbox worker. Must run before gtest sees the args.
  if (argc > 1 && std::string(argv[1]) == "afs-worker-main")
    return afs::service::worker_main();
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
