// Cross-substrate consistency: the same scheduler object model drives the
// real-thread runtime and the simulator; quantities that do not depend on
// timing (grab counts of central schedulers, iteration totals) must agree
// between the two.
#include <gtest/gtest.h>

#include "kernels/synthetic.hpp"
#include "machines/machines.hpp"
#include "runtime/parallel_for.hpp"
#include "sched/registry.hpp"
#include "sim/machine_sim.hpp"

namespace afs {
namespace {

TEST(CrossSubstrate, CentralGrabCountsAgree) {
  // A central queue's chunk sizes depend only on the remaining count, so
  // the number of grabs per loop is identical however requests interleave
  // — threads, simulator, or serial.
  const std::int64_t n = 777;
  const int p = 4;
  for (const char* spec : {"SS", "GSS", "FACTORING", "TRAPEZOID", "CHUNK(13)",
                           "TAPER(0.7)", "MOD-FACTORING"}) {
    // Real threads.
    ThreadPool pool(p);
    auto threaded = make_scheduler(spec);
    parallel_for(pool, *threaded, n, [](IterRange, int) {});
    const std::int64_t thread_grabs =
        threaded->stats().total().total_grabs();

    // Simulator.
    MachineSim sim(iris());
    auto simulated = make_scheduler(spec);
    const SimResult r = sim.run(balanced_program(n), *simulated, p);
    EXPECT_EQ(thread_grabs, r.sched_stats.total().total_grabs()) << spec;
  }
}

TEST(CrossSubstrate, IterationTotalsAgreeForEverything) {
  const std::int64_t n = 500;
  const int p = 6;
  for (const char* spec : {"AFS", "AFS-LE", "WS", "STATIC", "BEST-STATIC"}) {
    ThreadPool pool(p);
    auto threaded = make_scheduler(spec);
    std::atomic<std::int64_t> executed{0};
    parallel_for(pool, *threaded, n, [&executed](IterRange r, int) {
      executed.fetch_add(r.size(), std::memory_order_relaxed);
    });
    EXPECT_EQ(executed.load(), n) << spec << " (threads)";

    MachineSim sim(iris());
    auto simulated = make_scheduler(spec);
    const SimResult r = sim.run(balanced_program(n), *simulated, p);
    EXPECT_EQ(r.iterations, n) << spec << " (sim)";
  }
}

TEST(CrossSubstrate, AfsLocalPlusRemoteIterationsAgree) {
  // Split between local and steal traffic differs (timing-dependent) but
  // the sum is the loop size on both substrates.
  const std::int64_t n = 640;
  const int p = 8;
  ThreadPool pool(p);
  auto threaded = make_scheduler("AFS");
  parallel_for(pool, *threaded, n, [](IterRange, int) {});
  const QueueStats t = threaded->stats().total();
  EXPECT_EQ(t.iters_local + t.iters_remote, n);

  MachineSim sim(iris());
  auto simulated = make_scheduler("AFS");
  const SimResult r = sim.run(balanced_program(n), *simulated, p);
  const QueueStats s = r.sched_stats.total();
  EXPECT_EQ(s.iters_local + s.iters_remote, n);
}

}  // namespace
}  // namespace afs
