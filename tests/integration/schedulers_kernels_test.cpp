// End-to-end: every kernel must produce identical results under every
// scheduler on the real-thread substrate — the schedulers may only change
// *performance*, never *answers*.
#include <gtest/gtest.h>

#include <string>

#include "kernels/adjoint_convolution.hpp"
#include "kernels/gauss.hpp"
#include "kernels/sor.hpp"
#include "kernels/transitive_closure.hpp"
#include "sched/registry.hpp"
#include "workload/graphs.hpp"

namespace afs {
namespace {

class AllSchedulers : public ::testing::TestWithParam<std::string> {};

TEST_P(AllSchedulers, SorMatchesSerial) {
  SorKernel serial(40), par(40);
  serial.init(2);
  par.init(2);
  ThreadPool pool(4);
  auto sched = make_scheduler(GetParam());
  for (int e = 0; e < 4; ++e) {
    serial.epoch_serial();
    par.epoch_parallel(pool, *sched);
  }
  EXPECT_EQ(serial.grid(), par.grid());
}

TEST_P(AllSchedulers, GaussMatchesSerial) {
  GaussKernel serial(40), par(40);
  serial.init(4);
  par.init(4);
  serial.eliminate_serial();
  ThreadPool pool(4);
  auto sched = make_scheduler(GetParam());
  par.eliminate_parallel(pool, *sched);
  EXPECT_EQ(serial.matrix(), par.matrix());
}

TEST_P(AllSchedulers, TransitiveClosureMatchesSerial) {
  const auto g = random_graph(40, 0.08, 6);
  TransitiveClosureKernel serial(g), par(g);
  serial.run_serial();
  ThreadPool pool(4);
  auto sched = make_scheduler(GetParam());
  par.run_parallel(pool, *sched);
  EXPECT_EQ(serial.matrix(), par.matrix());
}

TEST_P(AllSchedulers, AdjointMatchesSerial) {
  AdjointConvolutionKernel serial(7, 5), par(7, 5);
  serial.run_serial();
  ThreadPool pool(4);
  auto sched = make_scheduler(GetParam());
  par.run_parallel(pool, *sched);
  EXPECT_EQ(serial.checksum(), par.checksum());
}

INSTANTIATE_TEST_SUITE_P(
    PaperSet, AllSchedulers,
    ::testing::Values("STATIC", "SS", "CHUNK(4)", "GSS", "GSS(2)", "FACTORING",
                      "TRAPEZOID", "MOD-FACTORING", "AFS", "AFS(k=2)",
                      "AFS-LE", "BEST-STATIC", "REV:FACTORING", "TAPER(0.5)"),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      std::string s = param_info.param;
      for (char& c : s)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return s;
    });

}  // namespace
}  // namespace afs
