// The §3 analytic results, verified against actual executions: measured
// sync-op counts must respect Theorem 3.1, and simulated finish-time skew
// must respect Theorem 3.2.
#include <gtest/gtest.h>

#include <tuple>

#include "kernels/synthetic.hpp"
#include "sched/affinity_scheduler.hpp"
#include "sched/bounds.hpp"
#include "sim/machine_sim.hpp"
#include "sched/registry.hpp"
#include "util/rng.hpp"

namespace afs {
namespace {

MachineConfig clean_machine() {
  MachineConfig m;
  m.name = "clean";
  m.max_processors = 64;
  m.work_unit_time = 1.0;
  return m;  // no jitter, no sync cost, no caches
}

// ---------------------------------------------- Theorem 3.1 in practice --

class Theorem31 : public ::testing::TestWithParam<
                      std::tuple<std::int64_t, int, int>> {};

TEST_P(Theorem31, MeasuredSyncOpsRespectBound) {
  const auto& [n, p, k] = GetParam();
  AffinityOptions o;
  o.k = k;
  AffinityScheduler sched(o);
  Xoshiro256 rng(99);

  sched.start_loop(n, p);
  std::vector<bool> done(static_cast<std::size_t>(p), false);
  int done_count = 0;
  while (done_count < p) {
    const int w = static_cast<int>(rng.next_in(0, p - 1));
    if (done[static_cast<std::size_t>(w)]) continue;
    if (sched.next(w).done()) {
      done[static_cast<std::size_t>(w)] = true;
      ++done_count;
    }
  }

  const std::int64_t bound = afs_queue_sync_bound(n, p, k);
  for (const auto& q : sched.stats().queues) {
    EXPECT_LE(q.local_grabs, bound);
    EXPECT_LE(q.remote_grabs, bound);
    EXPECT_LE(q.total_grabs(), bound + bound);
  }
}

std::string theorem31_name(
    const ::testing::TestParamInfo<std::tuple<std::int64_t, int, int>>& info) {
  const auto& [n, p, k] = info.param;
  return "n" + std::to_string(n) + "_p" + std::to_string(p) + "_k" +
         std::to_string(k);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Theorem31,
    ::testing::Values(std::make_tuple(512, 8, 8), std::make_tuple(512, 8, 2),
                      std::make_tuple(1000, 4, 4), std::make_tuple(5625, 8, 8),
                      std::make_tuple(100, 16, 16),
                      std::make_tuple(10000, 8, 3)),
    theorem31_name);

// ---------------------------------------------- Theorem 3.2 in practice --

TEST(Theorem32, KEqualsPFinishWithinOneIterationDespiteDelay) {
  // Uniform loop, one processor delayed: with k=P all processors finish
  // within ~1 iteration's time of each other -> idle time per processor is
  // bounded by a few iterations' work.
  const std::int64_t n = 100000;
  const int p = 8;
  SimOptions opts;
  opts.start_delays = {0.0, 0.0, 0.0, static_cast<double>(n) / 16, 0.0,
                       0.0, 0.0, 0.0};
  MachineSim sim(clean_machine(), opts);
  auto sched = std::make_unique<AffinityScheduler>();
  const SimResult r = sim.run(balanced_program(n), *sched, p);
  // Total idle across processors <= P * (bound iterations) * unit, plus
  // the unavoidable idle of the 7 early processors while the late one
  // catches up is absorbed by stealing, so idle stays small relative to
  // the delay.
  // Theorem 3.2 is proved for continuously divisible queues; the ceil()
  // rounding of real grabs adds up to one iteration per steal round, so a
  // few extra iterations of slack are allowed on top of the bound.
  const double bound_iters = afs_imbalance_bound(n, p, p);
  EXPECT_LE(r.idle, p * (bound_iters + 4.0) + 1e-6);
}

TEST(Theorem32, SmallKSuffersMoreImbalance) {
  const std::int64_t n = 100000;
  const int p = 8;
  SimOptions opts;
  opts.start_delays = {static_cast<double>(n) / 8};
  MachineSim sim(clean_machine(), opts);

  AffinityOptions ok2;
  ok2.k = 2;
  auto afs_k2 = std::make_unique<AffinityScheduler>(ok2);
  auto afs_kp = std::make_unique<AffinityScheduler>();
  const double t_k2 = sim.run(balanced_program(n), *afs_k2, p).makespan;
  const double t_kp = sim.run(balanced_program(n), *afs_kp, p).makespan;
  // Table 2's pattern: AFS(k=2) is the worst of the algorithms, and the
  // gap respects the Theorem 3.2 imbalance bound.
  EXPECT_GE(t_k2, t_kp - 1.0);
  EXPECT_LE(t_k2 - t_kp, afs_imbalance_bound(n, p, 2) + 4.0);
}

// ------------------------------------------- Theorem 3.3 consequence ----

TEST(Theorem33, TrapezoidMatchesAfsOnTriangularButGssLags) {
  // §4.4 Fig. 10 reasoning: triangular workload balances when chunks hold
  // <= 1/(2P) of remaining iterations. TSS starts exactly there; GSS's
  // first chunk holds ~2/P of the work and becomes the bottleneck.
  MachineSim sim(clean_machine());
  const std::int64_t n = 5000;
  const int p = 16;
  auto gss = make_scheduler("GSS");
  auto tss = make_scheduler("TRAPEZOID");
  auto afs = make_scheduler("AFS");
  const double tg = sim.run(triangular_program(n), *gss, p).makespan;
  const double tt = sim.run(triangular_program(n), *tss, p).makespan;
  const double ta = sim.run(triangular_program(n), *afs, p).makespan;
  EXPECT_LT(tt, tg);
  EXPECT_LT(ta, tg);
  EXPECT_NEAR(ta, tt, 0.15 * tt);
}

}  // namespace
}  // namespace afs
