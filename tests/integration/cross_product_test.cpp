// Whole-matrix sweep: every kernel program x every scheduler x every
// machine model must satisfy the simulator's basic sanity invariants.
// This is the broad safety net under the per-figure experiments.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "kernels/adjoint_convolution.hpp"
#include "kernels/gauss.hpp"
#include "kernels/sor.hpp"
#include "kernels/synthetic.hpp"
#include "kernels/transitive_closure.hpp"
#include "machines/machines.hpp"
#include "sched/registry.hpp"
#include "sim/machine_sim.hpp"
#include "workload/graphs.hpp"

namespace afs {
namespace {

LoopProgram program_by_name(const std::string& kernel) {
  if (kernel == "sor") return SorKernel::program(48, 3);
  if (kernel == "gauss") return GaussKernel::program(40);
  if (kernel == "tc")
    return TransitiveClosureKernel::program(clique_graph(40, 16));
  if (kernel == "adjoint") return AdjointConvolutionKernel::program(8);
  if (kernel == "triangular") return triangular_program(200);
  return balanced_program(333);
}

MachineConfig machine_by_name(const std::string& machine) {
  if (machine == "iris") return iris();
  if (machine == "symmetry") return symmetry();
  if (machine == "butterfly") return butterfly1();
  return ksr1();
}

using Case = std::tuple<std::string, std::string, std::string>;

class SimMatrix : public ::testing::TestWithParam<Case> {};

TEST_P(SimMatrix, InvariantsHold) {
  const auto& [kernel, spec, machine_name] = GetParam();
  const LoopProgram prog = program_by_name(kernel);
  const MachineConfig machine = machine_by_name(machine_name);
  MachineSim sim(machine);
  const double serial = sim.ideal_serial_time(prog);

  const int p = std::min(8, machine.max_processors);
  auto sched = make_scheduler(spec);
  const SimResult r = sim.run(prog, *sched, p);

  // 1. Time is positive and not faster than perfect speedup.
  EXPECT_GT(r.makespan, 0.0);
  EXPECT_GE(r.makespan, serial / p - 1e-6);

  // 2. Every iteration of every epoch was executed exactly once.
  std::int64_t expected_iters = 0;
  for (int e = 0; e < prog.epochs; ++e)
    for (const auto& loop : prog.epoch_loops(e)) expected_iters += loop.n;
  EXPECT_EQ(r.iterations, expected_iters);

  // 3. The scheduler accounted for exactly the same iterations.
  const QueueStats total = r.sched_stats.total();
  if (total.total_grabs() > 0) {  // static schedulers do no queue ops
    EXPECT_EQ(total.iters_local + total.iters_remote, expected_iters);
  }

  // 4. Identical reruns are bit-identical (determinism).
  auto sched2 = make_scheduler(spec);
  const SimResult r2 = sim.run(prog, *sched2, p);
  EXPECT_DOUBLE_EQ(r.makespan, r2.makespan);
  EXPECT_EQ(r.misses, r2.misses);
}

std::vector<Case> matrix() {
  std::vector<Case> cases;
  for (const char* kernel :
       {"sor", "gauss", "tc", "adjoint", "triangular", "balanced"})
    for (const char* spec : {"SS", "GSS", "FACTORING", "TRAPEZOID", "STATIC",
                             "MOD-FACTORING", "AFS", "AFS-LE", "WS"})
      for (const char* machine : {"iris", "symmetry", "butterfly", "ksr1"})
        cases.emplace_back(kernel, spec, machine);
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const auto& [kernel, spec, machine] = info.param;
  std::string s = kernel + "_" + spec + "_" + machine;
  for (char& c : s)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return s;
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, SimMatrix,
                         ::testing::ValuesIn(matrix()), case_name);

}  // namespace
}  // namespace afs
