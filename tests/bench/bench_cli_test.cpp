// Tests for the shared bench CLI parser (experiments/bench_cli.hpp). The
// reproduction binaries must fail loudly on any typo rather than silently
// falling back to a multi-minute default sweep, so parse_cli_args rejects
// unknown flags and malformed values with a message naming the culprit.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "experiments/bench_cli.hpp"

namespace afs::bench {
namespace {

struct Parse {
  BenchCli cli;
  std::string error;
  bool want_help = false;
  bool ok = false;
};

Parse parse(const std::vector<std::string>& args) {
  Parse p;
  p.ok = parse_cli_args(args, p.cli, p.error, p.want_help);
  return p;
}

TEST(BenchCli, DefaultsWithNoArgs) {
  const Parse p = parse({});
  ASSERT_TRUE(p.ok);
  EXPECT_FALSE(p.want_help);
  EXPECT_TRUE(p.cli.procs.empty());
  EXPECT_EQ(p.cli.out_dir, "bench_results");
  EXPECT_FALSE(p.cli.trace);
}

TEST(BenchCli, ParsesAllFlags) {
  const Parse p = parse({"--procs=1,2,4,64", "--out-dir=/tmp/x", "--trace"});
  ASSERT_TRUE(p.ok);
  EXPECT_EQ(p.cli.procs, (std::vector<int>{1, 2, 4, 64}));
  EXPECT_EQ(p.cli.out_dir, "/tmp/x");
  EXPECT_TRUE(p.cli.trace);
}

TEST(BenchCli, SingleProcValue) {
  const Parse p = parse({"--procs=57"});
  ASSERT_TRUE(p.ok);
  EXPECT_EQ(p.cli.procs, (std::vector<int>{57}));
}

TEST(BenchCli, LaterProcsFlagReplacesEarlier) {
  const Parse p = parse({"--procs=1,2", "--procs=8"});
  ASSERT_TRUE(p.ok);
  EXPECT_EQ(p.cli.procs, (std::vector<int>{8}));
}

TEST(BenchCli, HelpShortCircuits) {
  for (const char* flag : {"--help", "-h"}) {
    const Parse p = parse({flag});
    EXPECT_TRUE(p.ok) << flag;
    EXPECT_TRUE(p.want_help) << flag;
  }
  // --help wins even when followed by garbage: the user asked for usage.
  const Parse p = parse({"--help", "--bogus"});
  EXPECT_TRUE(p.ok);
  EXPECT_TRUE(p.want_help);
}

TEST(BenchCli, RejectsUnknownArgument) {
  const Parse p = parse({"--prcos=4"});  // typo'd flag
  ASSERT_FALSE(p.ok);
  EXPECT_NE(p.error.find("--prcos=4"), std::string::npos) << p.error;
}

TEST(BenchCli, RejectsBareWord) {
  const Parse p = parse({"8"});
  ASSERT_FALSE(p.ok);
  EXPECT_NE(p.error.find("'8'"), std::string::npos) << p.error;
}

TEST(BenchCli, RejectsEmptyOutDir) {
  const Parse p = parse({"--out-dir="});
  ASSERT_FALSE(p.ok);
  EXPECT_NE(p.error.find("--out-dir"), std::string::npos) << p.error;
}

TEST(BenchCli, RejectsEmptyProcsList) {
  const Parse p = parse({"--procs="});
  ASSERT_FALSE(p.ok);
  EXPECT_NE(p.error.find("--procs"), std::string::npos) << p.error;
}

TEST(BenchCli, RejectsMalformedProcsEntries) {
  for (const char* bad :
       {"--procs=abc", "--procs=4x", "--procs=1,,2", "--procs=1,2,",
        "--procs=,1", "--procs=0", "--procs=65", "--procs=-3",
        "--procs=99999999999999999999"}) {
    const Parse p = parse({bad});
    EXPECT_FALSE(p.ok) << bad;
    EXPECT_NE(p.error.find("--procs"), std::string::npos)
        << bad << " -> " << p.error;
  }
}

TEST(BenchCli, ErrorNamesTheBadToken) {
  const Parse p = parse({"--procs=1,zap,3"});
  ASSERT_FALSE(p.ok);
  EXPECT_NE(p.error.find("'zap'"), std::string::npos) << p.error;
}

TEST(BenchCli, DefaultsLeaveSweepRunnerOff) {
  const Parse p = parse({});
  ASSERT_TRUE(p.ok);
  EXPECT_EQ(p.cli.jobs, 1);
  EXPECT_FALSE(p.cli.resume);
  EXPECT_EQ(p.cli.cell_timeout, 0.0);
  EXPECT_EQ(p.cli.sweep_timeout, 0.0);
  EXPECT_FALSE(p.cli.runner_flags_set());
}

TEST(BenchCli, ParsesSweepRunnerFlags) {
  const Parse p = parse(
      {"--jobs=4", "--resume", "--cell-timeout=2.5", "--sweep-timeout=600"});
  ASSERT_TRUE(p.ok);
  EXPECT_EQ(p.cli.jobs, 4);
  EXPECT_TRUE(p.cli.resume);
  EXPECT_EQ(p.cli.cell_timeout, 2.5);
  EXPECT_EQ(p.cli.sweep_timeout, 600.0);
  EXPECT_TRUE(p.cli.runner_flags_set());
}

TEST(BenchCli, RejectsMalformedJobs) {
  for (const char* bad :
       {"--jobs=", "--jobs=0", "--jobs=-2", "--jobs=257", "--jobs=two",
        "--jobs=4x"}) {
    const Parse p = parse({bad});
    EXPECT_FALSE(p.ok) << bad;
    EXPECT_NE(p.error.find("--jobs"), std::string::npos)
        << bad << " -> " << p.error;
  }
}

TEST(BenchCli, RejectsMalformedTimeouts) {
  for (const char* bad :
       {"--cell-timeout=", "--cell-timeout=0", "--cell-timeout=-1",
        "--cell-timeout=abc", "--cell-timeout=1s", "--sweep-timeout=0",
        "--sweep-timeout=1e9"}) {
    const Parse p = parse({bad});
    EXPECT_FALSE(p.ok) << bad;
    EXPECT_NE(p.error.find("timeout"), std::string::npos)
        << bad << " -> " << p.error;
  }
}

TEST(BenchCli, DefaultsLeaveEngineTogglesAlone) {
  const Parse p = parse({});
  ASSERT_TRUE(p.ok);
  EXPECT_FALSE(p.cli.time_phases);
  EXPECT_FALSE(p.cli.no_batch);
  EXPECT_FALSE(p.cli.no_memory_fast_path);
  EXPECT_EQ(p.cli.cell_retries, -1);  // -1 = keep SweepOptions default
}

TEST(BenchCli, ParsesEngineToggles) {
  const Parse p =
      parse({"--time-phases", "--no-batch", "--no-memory-fast-path"});
  ASSERT_TRUE(p.ok);
  EXPECT_TRUE(p.cli.time_phases);
  EXPECT_TRUE(p.cli.no_batch);
  EXPECT_TRUE(p.cli.no_memory_fast_path);
}

TEST(BenchCli, ParsesCellRetries) {
  const Parse p = parse({"--cell-retries=0"});
  ASSERT_TRUE(p.ok);
  EXPECT_EQ(p.cli.cell_retries, 0);
  EXPECT_TRUE(p.cli.runner_flags_set());
  EXPECT_EQ(parse({"--cell-retries=5"}).cli.cell_retries, 5);
}

TEST(BenchCli, RejectsMalformedCellRetries) {
  for (const char* bad : {"--cell-retries=", "--cell-retries=-1",
                          "--cell-retries=101", "--cell-retries=two"}) {
    const Parse p = parse({bad});
    EXPECT_FALSE(p.ok) << bad;
    EXPECT_NE(p.error.find("--cell-retries"), std::string::npos)
        << bad << " -> " << p.error;
  }
}

TEST(BenchCli, TraceComposesWithParallelJobs) {
  // Traces are per (scheduler, P) cell — each cell owns its writer — so
  // the old "--trace requires --jobs=1" restriction is gone.
  const Parse p = parse({"--trace", "--jobs=4"});
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_TRUE(p.cli.trace);
  EXPECT_EQ(p.cli.jobs, 4);
  EXPECT_EQ(p.cli.trace_format, TraceFormat::kJsonl);
}

TEST(BenchCli, ParsesTraceFormat) {
  EXPECT_EQ(parse({"--trace", "--trace-format=binary"}).cli.trace_format,
            TraceFormat::kBinary);
  EXPECT_EQ(parse({"--trace-format=jsonl"}).cli.trace_format,
            TraceFormat::kJsonl);
  // Choosing an encoding is asking for a trace.
  const Parse p = parse({"--trace-format=binary"});
  ASSERT_TRUE(p.ok);
  EXPECT_TRUE(p.cli.trace);
  EXPECT_EQ(p.cli.trace_format, TraceFormat::kBinary);
}

TEST(BenchCli, RejectsMalformedTraceFormat) {
  for (const char* bad :
       {"--trace-format=", "--trace-format=csv", "--trace-format=BINARY"}) {
    const Parse p = parse({bad});
    EXPECT_FALSE(p.ok) << bad;
    EXPECT_NE(p.error.find("--trace-format"), std::string::npos)
        << bad << " -> " << p.error;
  }
}

TEST(BenchCli, TraceCellPathSanitizesLabel) {
  EXPECT_EQ(trace_cell_path("/tmp/out", "fig15", "CHUNK(8)", 4,
                            TraceFormat::kBinary),
            "/tmp/out/fig15.p4.CHUNK_8_.cctrace");
  EXPECT_EQ(
      trace_cell_path("out", "fig04", "AFS", 57, TraceFormat::kJsonl),
      "out/fig04.p57.AFS.trace.jsonl");
}

TEST(BenchCli, DefaultsLeaveStoreOff) {
  const Parse p = parse({});
  ASSERT_TRUE(p.ok);
  EXPECT_TRUE(p.cli.store_dir.empty());
  EXPECT_FALSE(p.cli.no_store);
}

TEST(BenchCli, ParsesStoreDir) {
  const Parse p = parse({"--store=/tmp/cells"});
  ASSERT_TRUE(p.ok);
  EXPECT_EQ(p.cli.store_dir, "/tmp/cells");
  EXPECT_FALSE(p.cli.no_store);
}

TEST(BenchCli, RejectsEmptyStoreDir) {
  const Parse p = parse({"--store="});
  ASSERT_FALSE(p.ok);
  EXPECT_NE(p.error.find("--store"), std::string::npos) << p.error;
}

TEST(BenchCli, NoStoreWinsWhenLast) {
  // Later flags override earlier ones, in both directions.
  const Parse off = parse({"--store=/tmp/cells", "--no-store"});
  ASSERT_TRUE(off.ok);
  EXPECT_TRUE(off.cli.no_store);
  EXPECT_TRUE(off.cli.store_dir.empty());
  const Parse on = parse({"--no-store", "--store=/tmp/cells"});
  ASSERT_TRUE(on.ok);
  EXPECT_FALSE(on.cli.no_store);
  EXPECT_EQ(on.cli.store_dir, "/tmp/cells");
}

TEST(BenchCli, CsvPathJoinsOutDir) {
  BenchCli cli;
  cli.out_dir = "/tmp/results";
  EXPECT_EQ(csv_path(cli, "tab7"), "/tmp/results/tab7.csv");
}

}  // namespace
}  // namespace afs::bench
