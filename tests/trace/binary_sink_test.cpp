// BinaryTraceSink + TraceReader: the .cctrace encoding must round-trip
// every event type and field bit-exactly (including negative queue
// indexes, repeated strings, and extreme doubles), publish files
// atomically, and reject malformed input loudly instead of decoding
// garbage.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "machines/machine_config.hpp"
#include "trace/binary_sink.hpp"
#include "trace/trace_reader.hpp"
#include "trace/trace_record.hpp"
#include "workload/loop_spec.hpp"

namespace afs {
namespace {

MachineConfig machine(const std::string& name) {
  MachineConfig m;
  m.name = name;
  return m;
}

std::vector<TraceRecord> decode(const std::string& bytes) {
  std::istringstream in(bytes);
  TraceReader reader(in);
  std::vector<TraceRecord> out;
  TraceRecord rec;
  while (reader.next(rec)) out.push_back(rec);
  return out;
}

/// Narrates one synthetic run exercising every event type and some
/// hostile field values; returns the records the reader should yield.
std::vector<TraceRecord> narrate_kitchen_sink(MetricsSink& sink) {
  std::vector<TraceRecord> want;
  const auto add = [&want](TraceRecord r) { want.push_back(std::move(r)); };

  sink.on_run_begin(machine("m/с✓"), "prog \"q\"", "AFS", 3);
  add({.ev = TraceEv::kRunBegin, .machine = "m/с✓", .program = "prog \"q\"",
       .scheduler = "AFS", .p = 3});

  sink.on_loop_begin(0, 100, 3);
  add({.ev = TraceEv::kLoopBegin, .p = 3, .epoch = 0, .n = 100});

  Grab g;
  g.range = {0, 40};
  g.kind = GrabKind::kStatic;
  g.queue = -1;  // static grabs touch no queue: negative must survive
  sink.on_grab(0, g, 0.0, 1.5);
  add({.ev = TraceEv::kGrab, .proc = 0, .kind = GrabKind::kStatic,
       .queue = -1, .begin = 0, .end = 40, .t0 = 0.0, .t1 = 1.5});

  sink.on_chunk(0, 0, 40, 1.5, 101.25);
  add({.ev = TraceEv::kChunk, .proc = 0, .begin = 0, .end = 40, .t0 = 1.5,
       .t1 = 101.25});

  BlockAccess a;
  a.block = 7;
  a.size = 16.0;
  sink.on_miss(0, a, 2.0, 18.0);
  add({.ev = TraceEv::kMiss, .proc = 0, .block = 7, .size = 16.0, .t0 = 2.0,
       .t1 = 18.0});

  sink.on_invalidate(1, 7, 2, 18.0, 20.0);
  add({.ev = TraceEv::kInval, .proc = 1, .copies = 2, .block = 7, .t0 = 18.0,
       .t1 = 20.0});

  sink.on_stall(2, 30.0, 30.0625);
  add({.ev = TraceEv::kStall, .proc = 2, .t0 = 30.0, .t1 = 30.0625});

  sink.on_proc_lost(2, 55.5);
  add({.ev = TraceEv::kLost, .proc = 2, .t0 = 55.5});

  sink.on_fault_steal(1, 2, 17);
  add({.ev = TraceEv::kFaultSteal, .proc = 1, .queue = 2, .n = 17});

  sink.on_abandoned(43);
  add({.ev = TraceEv::kAbandoned, .n = 43});

  sink.on_proc_done(0, 101.25);
  add({.ev = TraceEv::kDone, .proc = 0, .t0 = 101.25});

  sink.on_loop_end(0, 103.0);
  add({.ev = TraceEv::kLoopEnd, .epoch = 0, .t0 = 103.0});

  // A hostile double: non-round, many significant bits.
  const double cost = 0.1 + 1e-13;
  sink.on_barrier(0, cost, 103.0 + cost);
  add({.ev = TraceEv::kBarrier, .epoch = 0, .size = cost,
       .t0 = 103.0 + cost});

  sink.on_run_end(1e300);
  add({.ev = TraceEv::kRunEnd, .t0 = 1e300});

  // Second run in the same file: strings already interned, XOR registers
  // carry over — both must still decode exactly.
  sink.on_run_begin(machine("m/с✓"), "prog \"q\"", "SS", 2);
  add({.ev = TraceEv::kRunBegin, .machine = "m/с✓", .program = "prog \"q\"",
       .scheduler = "SS", .p = 2});
  sink.on_run_end(std::numeric_limits<double>::min());
  add({.ev = TraceEv::kRunEnd, .t0 = std::numeric_limits<double>::min()});

  return want;
}

TEST(BinaryTraceSink, KitchenSinkRoundTripsExactly) {
  std::ostringstream out;
  BinaryTraceSink sink(out);
  const std::vector<TraceRecord> want = narrate_kitchen_sink(sink);
  sink.finalize();

  const std::string bytes = out.str();
  ASSERT_GE(bytes.size(), sizeof BinaryTraceSink::kMagic);
  EXPECT_EQ(bytes.compare(0, 4, "CCTR"), 0);
  EXPECT_EQ(bytes[4], 1);  // version

  const std::vector<TraceRecord> got = decode(bytes);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i)
    EXPECT_EQ(got[i], want[i]) << "record " << i << " ("
                               << to_string(want[i].ev) << ")";
  EXPECT_EQ(sink.records_written(), static_cast<std::int64_t>(want.size()));
  EXPECT_EQ(sink.bytes_written(), static_cast<std::int64_t>(bytes.size()));
}

TEST(BinaryTraceSink, GrabKindsAndLargeValuesRoundTrip) {
  std::ostringstream out;
  BinaryTraceSink sink(out);
  sink.on_run_begin(machine("m"), "p", "s", 2);
  const std::int64_t big = std::int64_t{1} << 60;
  int proc = 0;
  for (GrabKind k : {GrabKind::kNone, GrabKind::kCentral, GrabKind::kLocal,
                     GrabKind::kRemote, GrabKind::kStatic}) {
    Grab g;
    g.range = {big, big + 1000};
    g.kind = k;
    g.queue = proc % 2 ? -1 : proc;
    sink.on_grab(proc, g, 1.0 * proc, 1.0 * proc + 0.5);
    ++proc;
  }
  sink.on_run_end(5.0);
  sink.finalize();

  const std::vector<TraceRecord> got = decode(out.str());
  ASSERT_EQ(got.size(), 7u);
  EXPECT_EQ(got[1].kind, GrabKind::kNone);
  EXPECT_EQ(got[3].kind, GrabKind::kLocal);
  EXPECT_EQ(got[4].kind, GrabKind::kRemote);
  EXPECT_EQ(got[5].kind, GrabKind::kStatic);
  EXPECT_EQ(got[2].begin, big);
  EXPECT_EQ(got[2].end, big + 1000);
  EXPECT_EQ(got[2].queue, -1);  // proc 1: odd procs grabbed with queue -1
}

TEST(TraceReader, RejectsMalformedInput) {
  {  // empty
    std::istringstream in("");
    EXPECT_THROW(TraceReader r(in), std::runtime_error);
  }
  {  // bad magic
    std::istringstream in("CCTX\x01\x00\x00\x00");
    EXPECT_THROW(TraceReader r(in), std::runtime_error);
  }
  {  // future version byte
    std::istringstream in(std::string("CCTR\x09\x00\x00\x00", 8));
    EXPECT_THROW(TraceReader r(in), std::runtime_error);
  }
  {  // unknown opcode after a valid header
    std::string bytes("CCTR\x01\x00\x00\x00", 8);
    bytes.push_back(static_cast<char>(0x7f));
    std::istringstream in(bytes);
    TraceReader r(in);
    TraceRecord rec;
    EXPECT_THROW(r.next(rec), std::runtime_error);
  }
  {  // record truncated mid-field
    std::ostringstream out;
    BinaryTraceSink sink(out);
    sink.on_run_begin(machine("m"), "p", "s", 2);
    sink.on_run_end(10.0);
    sink.finalize();
    const std::string whole = out.str();
    std::istringstream in(whole.substr(0, whole.size() - 1));
    TraceReader r(in);
    TraceRecord rec;
    EXPECT_TRUE(r.next(rec));  // run_begin still intact
    EXPECT_THROW(r.next(rec), std::runtime_error);
  }
  {  // dangling string reference: run_begin body referencing id 9
    std::string bytes("CCTR\x01\x00\x00\x00", 8);
    bytes.push_back(static_cast<char>(TraceEv::kRunBegin));
    bytes.push_back(9);  // machine id never defined
    bytes.push_back(0);
    bytes.push_back(0);
    bytes.push_back(2);
    std::istringstream in(bytes);
    TraceReader r(in);
    TraceRecord rec;
    EXPECT_THROW(r.next(rec), std::runtime_error);
  }
}

TEST(BinaryTraceSink, FinalizePublishesAtomicallyAbandonDiscards) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "afs_cctrace_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "cell.cctrace").string();

  {
    BinaryTraceSink sink(path);
    sink.on_run_begin(machine("m"), "p", "s", 1);
    // While streaming, only the temp file exists: a crash mid-run can
    // never leave a half-written published trace behind.
    EXPECT_FALSE(std::filesystem::exists(path));
    EXPECT_TRUE(std::filesystem::exists(path + ".tmp"));
    sink.on_run_end(1.0);
    sink.finalize();
    EXPECT_TRUE(std::filesystem::exists(path));
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  }
  const std::vector<TraceRecord> got = read_trace(path);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].ev, TraceEv::kRunBegin);
  EXPECT_EQ(got[1].ev, TraceEv::kRunEnd);

  const std::string dropped = (dir / "dropped.cctrace").string();
  {
    BinaryTraceSink sink(dropped);
    sink.on_run_begin(machine("m"), "p", "s", 1);
    sink.abandon();
  }
  EXPECT_FALSE(std::filesystem::exists(dropped));
  EXPECT_FALSE(std::filesystem::exists(dropped + ".tmp"));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace afs
