// analyze_trace on hand-built record sequences: the arithmetic of the
// per-processor breakdown, the steal matrix, the affinity score, and the
// conservation law are all small enough to verify against pencil-and-
// paper numbers; schema violations must throw rather than mis-aggregate.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "trace/analysis.hpp"
#include "trace/trace_record.hpp"

namespace afs {
namespace {

TraceRecord run_begin(int p) {
  return {.ev = TraceEv::kRunBegin, .machine = "m", .program = "prog",
          .scheduler = "X", .p = p};
}
TraceRecord loop_begin(int epoch, std::int64_t n, int p) {
  return {.ev = TraceEv::kLoopBegin, .p = p, .epoch = epoch, .n = n};
}
TraceRecord grab(int proc, GrabKind kind, int queue, std::int64_t b,
                 std::int64_t e, double t0, double t1) {
  return {.ev = TraceEv::kGrab, .proc = proc, .kind = kind, .queue = queue,
          .begin = b, .end = e, .t0 = t0, .t1 = t1};
}
TraceRecord chunk(int proc, std::int64_t b, std::int64_t e, double t0,
                  double t1) {
  return {.ev = TraceEv::kChunk, .proc = proc, .begin = b, .end = e,
          .t0 = t0, .t1 = t1};
}
TraceRecord loop_end(int epoch, double end) {
  return {.ev = TraceEv::kLoopEnd, .epoch = epoch, .t0 = end};
}
TraceRecord run_end(double makespan) {
  return {.ev = TraceEv::kRunEnd, .t0 = makespan};
}

TEST(TraceAnalysis, BreakdownArithmetic) {
  std::vector<TraceRecord> recs = {
      run_begin(2),
      loop_begin(0, 10, 2),
      grab(0, GrabKind::kLocal, 0, 0, 6, 0.0, 1.0),
      chunk(0, 0, 6, 1.0, 13.0),
      {.ev = TraceEv::kMiss, .proc = 0, .block = 3, .size = 4.0, .t0 = 2.0,
       .t1 = 5.0},
      grab(1, GrabKind::kCentral, 0, 6, 10, 0.0, 2.0),
      chunk(1, 6, 10, 2.0, 10.0),
      {.ev = TraceEv::kStall, .proc = 1, .t0 = 10.0, .t1 = 14.0},
      loop_end(0, 14.0),
      run_end(20.0),
  };
  const auto runs = analyze_trace(recs);
  ASSERT_EQ(runs.size(), 1u);
  const TraceAnalysis& a = runs.front();

  EXPECT_EQ(a.scheduler, "X");
  EXPECT_EQ(a.p, 2);
  EXPECT_EQ(a.epochs, 1);
  EXPECT_DOUBLE_EQ(a.makespan, 20.0);

  ASSERT_EQ(a.procs.size(), 2u);
  EXPECT_DOUBLE_EQ(a.procs[0].exec, 12.0);
  EXPECT_DOUBLE_EQ(a.procs[0].memory, 3.0);
  EXPECT_DOUBLE_EQ(a.procs[0].busy(), 9.0);
  EXPECT_DOUBLE_EQ(a.procs[0].sync, 1.0);
  EXPECT_DOUBLE_EQ(a.procs[0].idle, 20.0 - 12.0 - 1.0);
  EXPECT_EQ(a.procs[0].iterations, 6);
  EXPECT_EQ(a.procs[0].chunks, 1);

  EXPECT_DOUBLE_EQ(a.procs[1].exec, 8.0);
  EXPECT_DOUBLE_EQ(a.procs[1].sync, 2.0);
  EXPECT_DOUBLE_EQ(a.procs[1].stall, 4.0);
  EXPECT_DOUBLE_EQ(a.procs[1].idle, 20.0 - 8.0 - 2.0 - 4.0);

  EXPECT_EQ(a.total_iterations, 10);
  EXPECT_EQ(a.executed_iterations, 10);
  EXPECT_EQ(a.abandoned_iterations, 0);
  EXPECT_TRUE(a.conserved());
  // Single epoch: nothing has a previous-epoch owner yet.
  EXPECT_EQ(a.scored_iterations, 0);
  EXPECT_DOUBLE_EQ(a.affinity_score(), 0.0);
}

TEST(TraceAnalysis, ExecImbalanceIsMaxOverMeanMinusOne) {
  // P0 executes for 12, P1 for 8: mean 10, max 12 -> imbalance 0.2.
  std::vector<TraceRecord> recs = {
      run_begin(2),
      loop_begin(0, 10, 2),
      chunk(0, 0, 6, 0.0, 12.0),
      chunk(1, 6, 10, 0.0, 8.0),
      loop_end(0, 12.0),
      run_end(12.0),
  };
  const auto runs = analyze_trace(recs);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_DOUBLE_EQ(runs.front().exec_imbalance(), 0.2);

  // Perfect balance scores exactly 0.
  std::vector<TraceRecord> even = {
      run_begin(2),
      loop_begin(0, 10, 2),
      chunk(0, 0, 5, 0.0, 7.0),
      chunk(1, 5, 10, 0.0, 7.0),
      loop_end(0, 7.0),
      run_end(7.0),
  };
  EXPECT_DOUBLE_EQ(analyze_trace(even).front().exec_imbalance(), 0.0);

  // An empty analysis (no procs) is defined as balanced, not NaN.
  EXPECT_DOUBLE_EQ(TraceAnalysis{}.exec_imbalance(), 0.0);
}

TEST(TraceAnalysis, AffinityScoreCountsPreviousEpochOwners) {
  // Epoch 0: P0 runs [0,6), P1 runs [6,10).
  // Epoch 1: P0 runs [0,8), P1 runs [8,10) — P0 keeps its 6, steals 2 of
  // P1's; P1 keeps 2. Affine = 8 of 10 scored.
  std::vector<TraceRecord> recs = {
      run_begin(2),
      loop_begin(0, 10, 2),
      chunk(0, 0, 6, 0.0, 6.0),
      chunk(1, 6, 10, 0.0, 4.0),
      loop_end(0, 6.0),
      loop_begin(1, 10, 2),
      chunk(0, 0, 8, 6.0, 14.0),
      chunk(1, 8, 10, 6.0, 8.0),
      loop_end(1, 14.0),
      run_end(14.0),
  };
  const auto runs = analyze_trace(recs);
  ASSERT_EQ(runs.size(), 1u);
  const TraceAnalysis& a = runs.front();
  EXPECT_EQ(a.scored_iterations, 10);
  EXPECT_EQ(a.affine_iterations, 8);
  EXPECT_DOUBLE_EQ(a.affinity_score(), 0.8);
}

TEST(TraceAnalysis, StealMatrixFromRemoteGrabsAndFaultSteals) {
  std::vector<TraceRecord> recs = {
      run_begin(3),
      loop_begin(0, 30, 3),
      grab(2, GrabKind::kRemote, 0, 0, 5, 0.0, 1.0),  // P2 steals 5 from P0
      chunk(2, 0, 5, 1.0, 6.0),
      grab(2, GrabKind::kRemote, 1, 10, 12, 6.0, 7.0),  // and 2 from P1
      chunk(2, 10, 12, 7.0, 9.0),
      chunk(0, 5, 10, 0.0, 5.0),
      chunk(1, 12, 20, 0.0, 8.0),
      {.ev = TraceEv::kFaultSteal, .proc = 0, .queue = 2, .n = 7},
      chunk(0, 20, 27, 5.0, 12.0),
      {.ev = TraceEv::kAbandoned, .n = 3},
      loop_end(0, 12.0),
      run_end(12.0),
  };
  const auto runs = analyze_trace(recs);
  ASSERT_EQ(runs.size(), 1u);
  const TraceAnalysis& a = runs.front();

  EXPECT_EQ(a.steal_iters[2][0], 5);
  EXPECT_EQ(a.steal_iters[2][1], 2);
  EXPECT_EQ(a.steal_iters[0][2], 0);
  EXPECT_EQ(a.remote_steals(), 7);
  EXPECT_EQ(a.fault_steal_iters[0][2], 7);
  EXPECT_EQ(a.fault_steals(), 7);

  EXPECT_EQ(a.total_iterations, 30);
  EXPECT_EQ(a.executed_iterations, 27);
  EXPECT_EQ(a.abandoned_iterations, 3);
  EXPECT_TRUE(a.conserved());
}

TEST(TraceAnalysis, DetectsConservationViolation) {
  std::vector<TraceRecord> recs = {
      run_begin(1),
      loop_begin(0, 10, 1),
      chunk(0, 0, 6, 0.0, 6.0),  // 4 iterations vanish: not conserved
      loop_end(0, 6.0),
      run_end(6.0),
  };
  const auto runs = analyze_trace(recs);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_FALSE(runs.front().conserved());
}

TEST(TraceAnalysis, MultipleRunsAnalyzeIndependently) {
  std::vector<TraceRecord> recs = {
      run_begin(1), loop_begin(0, 4, 1), chunk(0, 0, 4, 0.0, 4.0),
      loop_end(0, 4.0), run_end(4.0),
      run_begin(2), loop_begin(0, 6, 2), chunk(0, 0, 3, 0.0, 3.0),
      chunk(1, 3, 6, 0.0, 3.0), loop_end(0, 3.0), run_end(3.0),
  };
  const auto runs = analyze_trace(recs);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].p, 1);
  EXPECT_EQ(runs[0].total_iterations, 4);
  EXPECT_EQ(runs[1].p, 2);
  EXPECT_EQ(runs[1].total_iterations, 6);
  EXPECT_TRUE(runs[0].conserved());
  EXPECT_TRUE(runs[1].conserved());
}

TEST(TraceAnalysis, RejectsSchemaViolations) {
  EXPECT_THROW(analyze_trace({chunk(0, 0, 4, 0.0, 4.0)}),
               std::runtime_error);  // event outside a run
  EXPECT_THROW(analyze_trace({run_begin(1), loop_begin(0, 4, 1)}),
               std::runtime_error);  // missing run_end
  EXPECT_THROW(analyze_trace({run_begin(1), run_begin(1)}),
               std::runtime_error);  // nested run_begin
  EXPECT_THROW(
      analyze_trace({run_begin(1), chunk(5, 0, 4, 0.0, 4.0), run_end(4.0)}),
      std::runtime_error);  // processor index out of range
}

}  // namespace
}  // namespace afs
