// The trace subsystem's core property: for the same seeded simulation,
// the JSONL and binary sinks must decode to *identical* TraceRecord
// sequences — every field bit-exact, through every scheduler family and
// under kitchen-sink fault injection. On top of the decoded stream this
// file also checks the trace conservation law (narrated + abandoned ==
// announced) and the paper's headline observable: AFS keeps a far higher
// epoch-to-epoch affinity score than central-queue self-scheduling.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "kernels/gauss.hpp"
#include "kernels/sor.hpp"
#include "machines/machines.hpp"
#include "sched/registry.hpp"
#include "sim/machine_sim.hpp"
#include "sim/perturbation.hpp"
#include "sim/trace_sink.hpp"
#include "trace/analysis.hpp"
#include "trace/binary_sink.hpp"
#include "trace/trace_reader.hpp"

namespace afs {
namespace {

MachineConfig quiet(MachineConfig m) {
  m.epoch_jitter = 0.0;
  return m;
}

/// Every fault family at once (mirrors the batching-equivalence test's
/// kitchen sink): deaths mid-chunk, link bursts, memory spikes, stalls —
/// so lost / fault_steal / abandoned / stall records are all exercised.
PerturbationConfig kitchen_sink() {
  PerturbationConfig pc;
  pc.seed = 2026;
  pc.stall_mean_interval = 3000.0;
  pc.stall_duration = 250.0;
  pc.losses.push_back({1, 2000.0});  // early enough to hit small test runs
  pc.mem_spike_prob = 0.1;
  pc.mem_spike_latency = 80.0;
  pc.burst_mean_interval = 8000.0;
  pc.burst_duration = 1500.0;
  pc.burst_multiplier = 3.0;
  return pc;
}

void run_traced(const MachineConfig& m, const LoopProgram& prog,
                const std::string& spec, int p, MetricsSink& sink,
                const PerturbationConfig* pc) {
  SimOptions opts;
  opts.trace = &sink;
  if (pc != nullptr) opts.perturb = *pc;
  MachineSim sim(m, opts);
  auto sched = make_scheduler(spec);
  sim.run(prog, *sched, p);
}

std::vector<TraceRecord> decode(std::istringstream in) {
  TraceReader reader(in);
  std::vector<TraceRecord> out;
  TraceRecord rec;
  while (reader.next(rec)) out.push_back(rec);
  return out;
}

/// Runs the same deterministic cell through both sinks and returns the
/// two decoded sequences after asserting they are identical.
std::vector<TraceRecord> check_equivalence(const MachineConfig& m,
                                           const LoopProgram& prog,
                                           const std::string& spec, int p,
                                           const PerturbationConfig* pc) {
  std::ostringstream jsonl_out;
  std::ostringstream binary_out;
  {
    JsonlTraceSink jsonl(jsonl_out);
    run_traced(m, prog, spec, p, jsonl, pc);
  }
  {
    BinaryTraceSink binary(binary_out);
    run_traced(m, prog, spec, p, binary, pc);
  }

  const std::vector<TraceRecord> from_jsonl =
      decode(std::istringstream(jsonl_out.str()));
  std::vector<TraceRecord> from_binary =
      decode(std::istringstream(binary_out.str()));

  const std::string label = m.name + "/" + spec + "/" + prog.name +
                            "/P=" + std::to_string(p);
  EXPECT_EQ(from_jsonl.size(), from_binary.size()) << label;
  const std::size_t n = std::min(from_jsonl.size(), from_binary.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(from_jsonl[i], from_binary[i])
        << label << ": record " << i << " ("
        << to_string(from_jsonl[i].ev) << ") decodes differently";
    if (!(from_jsonl[i] == from_binary[i])) break;  // one mismatch is enough
  }
  return from_binary;
}

TEST(TraceEquivalence, AllPaperSchedulersDecodeIdentically) {
  const MachineConfig m = quiet(iris());
  const LoopProgram prog = GaussKernel::program(48);
  for (const std::string& spec : paper_scheduler_specs()) {
    const std::vector<TraceRecord> records =
        check_equivalence(m, prog, spec, 4, nullptr);
    ASSERT_FALSE(records.empty()) << spec;
    EXPECT_EQ(records.front().ev, TraceEv::kRunBegin) << spec;
    EXPECT_EQ(records.back().ev, TraceEv::kRunEnd) << spec;
  }
}

TEST(TraceEquivalence, KitchenSinkPerturbationsDecodeIdentically) {
  const PerturbationConfig pc = kitchen_sink();
  const MachineConfig m = quiet(ksr1());
  const LoopProgram prog = SorKernel::program(48, 4);
  for (const char* spec : {"AFS", "GSS", "STATIC", "SS"}) {
    const std::vector<TraceRecord> records =
        check_equivalence(m, prog, spec, 8, &pc);

    // The kitchen sink must actually exercise the fault records, or this
    // test silently stops covering them.
    bool saw_stall = false, saw_lost = false;
    for (const TraceRecord& r : records) {
      saw_stall |= r.ev == TraceEv::kStall;
      saw_lost |= r.ev == TraceEv::kLost;
    }
    EXPECT_TRUE(saw_stall) << spec;
    EXPECT_TRUE(saw_lost) << spec;

    // Conservation law, through the binary reader: every announced
    // iteration is either narrated in a chunk or abandoned.
    for (const TraceAnalysis& a : analyze_trace(records)) {
      EXPECT_TRUE(a.conserved())
          << spec << ": " << a.executed_iterations << " executed + "
          << a.abandoned_iterations << " abandoned != "
          << a.total_iterations << " announced";
    }
  }
}

TEST(TraceEquivalence, AffinitySchedulingScoresAboveSelfScheduling) {
  // The paper's mechanism, quantified: on a cache-friendly SOR sweep at
  // P=8, AFS re-executes almost every iteration on its previous-epoch
  // owner, while central-queue self-scheduling scatters them. Keep the
  // machine's natural epoch jitter: with perfectly synchronized epochs a
  // deterministic central queue replays the same assignment every epoch
  // and scores a (meaningless) 1.0.
  const MachineConfig m = iris();
  const LoopProgram prog = SorKernel::program(64, 6);

  const auto score = [&](const char* spec) {
    std::ostringstream out;
    double result = 0.0;
    {
      BinaryTraceSink sink(out);
      run_traced(m, prog, spec, 8, sink, nullptr);
    }
    const auto runs = analyze_trace(decode(std::istringstream(out.str())));
    EXPECT_EQ(runs.size(), 1u) << spec;
    for (const TraceAnalysis& a : runs) {
      EXPECT_GT(a.scored_iterations, 0) << spec;
      result = a.affinity_score();
    }
    return result;
  };

  const double afs = score("AFS");
  const double ss = score("SS");
  EXPECT_GT(afs, 0.8);
  EXPECT_GT(afs, ss);
}

}  // namespace
}  // namespace afs
