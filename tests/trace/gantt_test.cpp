// render_gantt_html: the timeline must be a standalone, structurally
// sound HTML document containing the per-processor lanes, steal arrows,
// and fault markers the records call for — and user-supplied strings
// must be escaped, never spliced raw into markup.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kernels/gauss.hpp"
#include "machines/machines.hpp"
#include "sched/registry.hpp"
#include "sim/machine_sim.hpp"
#include "trace/binary_sink.hpp"
#include "trace/gantt.hpp"
#include "trace/trace_reader.hpp"

#include <sstream>

namespace afs {
namespace {

int count_of(const std::string& hay, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size()))
    ++n;
  return n;
}

std::vector<TraceRecord> crafted_trace() {
  std::vector<TraceRecord> recs;
  recs.push_back({.ev = TraceEv::kRunBegin, .machine = "m", .program = "prog",
                  .scheduler = "AFS", .p = 2});
  recs.push_back({.ev = TraceEv::kLoopBegin, .p = 2, .epoch = 0, .n = 10});
  recs.push_back({.ev = TraceEv::kGrab, .proc = 0, .kind = GrabKind::kLocal,
                  .queue = 0, .begin = 0, .end = 6, .t0 = 0.0, .t1 = 0.5});
  recs.push_back({.ev = TraceEv::kChunk, .proc = 0, .begin = 0, .end = 6,
                  .t0 = 0.5, .t1 = 6.0});
  recs.push_back({.ev = TraceEv::kGrab, .proc = 1, .kind = GrabKind::kRemote,
                  .queue = 0, .begin = 6, .end = 10, .t0 = 1.0, .t1 = 1.5});
  recs.push_back({.ev = TraceEv::kChunk, .proc = 1, .begin = 6, .end = 10,
                  .t0 = 1.5, .t1 = 5.5});
  recs.push_back({.ev = TraceEv::kStall, .proc = 1, .t0 = 5.5, .t1 = 7.0});
  recs.push_back({.ev = TraceEv::kLost, .proc = 1, .t0 = 7.0});
  recs.push_back(
      {.ev = TraceEv::kFaultSteal, .proc = 0, .queue = 1, .n = 0});
  recs.push_back({.ev = TraceEv::kLoopEnd, .epoch = 0, .t0 = 8.0});
  recs.push_back({.ev = TraceEv::kRunEnd, .t0 = 8.0});
  return recs;
}

TEST(Gantt, RendersStandaloneDocumentWithArrowsAndMarkers) {
  const std::string html =
      render_gantt_html(crafted_trace(), "crafted cell");

  EXPECT_EQ(html.rfind("<!DOCTYPE html>", 0), 0u);
  EXPECT_NE(html.find("</html>"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("</svg>"), std::string::npos);
  // No external assets or scripts: the file must stand alone.
  EXPECT_EQ(html.find("<script"), std::string::npos);
  EXPECT_EQ(html.find("http://"), html.find("http://www.w3.org"));

  // Two processor lanes, labeled.
  EXPECT_NE(html.find(">P0</text>"), std::string::npos);
  EXPECT_NE(html.find(">P1</text>"), std::string::npos);

  // One remote grab -> one steal arrow; one fault reassignment -> one
  // dashed arrow; one loss -> one marker.
  EXPECT_EQ(count_of(html, "steal-arrow"), 1);
  EXPECT_EQ(count_of(html, "fault-arrow"), 1);
  EXPECT_EQ(count_of(html, "lost-marker"), 1);
  EXPECT_NE(html.find("stroke-dasharray"), std::string::npos);

  // Balanced tags for the structural elements a viewer would trip on.
  EXPECT_EQ(count_of(html, "<svg"), count_of(html, "</svg>"));
  EXPECT_EQ(count_of(html, "<table"), count_of(html, "</table>"));
  EXPECT_EQ(count_of(html, "<h2"), count_of(html, "</h2>"));
}

TEST(Gantt, EscapesUserStrings) {
  std::vector<TraceRecord> recs = crafted_trace();
  recs[0].scheduler = "CHUNK(<7>&\"x\")";
  const std::string html =
      render_gantt_html(recs, "title <b>&\"quoted\"</b>");
  EXPECT_EQ(html.find("<b>"), std::string::npos);
  EXPECT_NE(html.find("title &lt;b&gt;&amp;&quot;quoted&quot;&lt;/b&gt;"),
            std::string::npos);
  EXPECT_NE(html.find("CHUNK(&lt;7&gt;&amp;&quot;x&quot;)"),
            std::string::npos);
}

TEST(Gantt, RendersRealSimulatedRun) {
  std::ostringstream out;
  {
    BinaryTraceSink sink(out);
    SimOptions opts;
    opts.trace = &sink;
    MachineSim sim(iris(), opts);
    auto sched = make_scheduler("AFS");
    sim.run(GaussKernel::program(32), *sched, 4);
  }
  std::istringstream in(out.str());
  TraceReader reader(in);
  std::vector<TraceRecord> records;
  for (TraceRecord rec; reader.next(rec);) records.push_back(rec);

  const std::string html = render_gantt_html(records, "gauss32 AFS P=4");
  EXPECT_NE(html.find("AFS"), std::string::npos);
  EXPECT_NE(html.find(">P3</text>"), std::string::npos);
  EXPECT_NE(html.find("affinity score"), std::string::npos);
  EXPECT_GT(count_of(html, "<rect"), 4);  // lanes + actual chunks
  EXPECT_EQ(count_of(html, "<svg"), 1);
}

}  // namespace
}  // namespace afs
