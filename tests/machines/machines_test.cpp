#include "machines/machines.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace afs {
namespace {

TEST(Machines, IrisShape) {
  const auto m = iris();
  EXPECT_EQ(m.name, "iris");
  EXPECT_EQ(m.max_processors, 8);
  EXPECT_EQ(m.interconnect, Interconnect::kBus);
  EXPECT_GT(m.cache_capacity, 0.0);
}

TEST(Machines, ButterflyHasNoCaches) {
  const auto m = butterfly1();
  EXPECT_EQ(m.interconnect, Interconnect::kSwitch);
  EXPECT_DOUBLE_EQ(m.cache_capacity, 0.0);
  EXPECT_GE(m.max_processors, 56);
}

TEST(Machines, SymmetryIsComputeBound) {
  // The defining ratio of §5.1: Symmetry compute is ~30x slower than Iris
  // while its bus is comparable, so comm/compute is tiny.
  const auto s = symmetry();
  const auto i = iris();
  EXPECT_NEAR(s.work_unit_time / i.work_unit_time, 30.0, 1.0);
  EXPECT_LT(s.transfer_unit_time, i.transfer_unit_time);
  EXPECT_LT(s.cache_capacity, i.cache_capacity);  // 64 KB vs 1 MB
}

TEST(Machines, Ksr1IsCommBoundWithExpensiveSync) {
  const auto k = ksr1();
  EXPECT_EQ(k.interconnect, Interconnect::kRing);
  EXPECT_EQ(k.max_processors, 64);
  EXPECT_GT(k.remote_sync_time, iris().remote_sync_time);
  EXPECT_GT(k.miss_latency, iris().miss_latency);
  EXPECT_GT(k.cache_capacity, iris().cache_capacity);  // 32 MB all-cache
}

TEST(Machines, Tc2000TrendRatios) {
  // §5.1: TC2000 compute improved ~60x over Butterfly I, communication
  // only ~2.5-3.6x, so the comm/compute ratio grew by more than 15x.
  const auto b = butterfly1();
  const auto t = tc2000();
  const double compute_speedup = b.work_unit_time / t.work_unit_time;
  const double latency_speedup = b.miss_latency / t.miss_latency;
  EXPECT_NEAR(compute_speedup, 60.0, 1.0);
  EXPECT_LT(latency_speedup, 4.0);
  const double ratio_before = b.miss_latency / b.work_unit_time;
  const double ratio_after = t.miss_latency / t.work_unit_time;
  EXPECT_GT(ratio_after / ratio_before, 15.0);
}

TEST(Machines, ProcessorCountBoundaryIs64) {
  // The Directory packs sharer sets into a 64-bit mask, so 64 processors
  // is the exact architectural ceiling: 64 must validate, 65 must not.
  MachineConfig m = ksr1();
  m.max_processors = 64;
  EXPECT_NO_THROW(m.validate());
  m.max_processors = 65;
  EXPECT_THROW(m.validate(), CheckFailure);
  m.max_processors = 0;
  EXPECT_THROW(m.validate(), CheckFailure);
}

TEST(Machines, AllConfigsInternallyConsistent) {
  for (const auto& m : {iris(), butterfly1(), symmetry(), ksr1(), tc2000()}) {
    EXPECT_GT(m.work_unit_time, 0.0) << m.name;
    EXPECT_GE(m.cache_capacity, 0.0) << m.name;
    EXPECT_GE(m.local_sync_time, 0.0) << m.name;
    EXPECT_GE(m.remote_sync_time, m.local_sync_time) << m.name;
    EXPECT_GE(m.max_processors, 8) << m.name;
    EXPECT_LE(m.max_processors, 64) << m.name;
  }
}

}  // namespace
}  // namespace afs
