#include "workload/cost_models.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace afs {
namespace {

TEST(CostModels, UniformIsConstant) {
  const auto f = uniform_cost(3.5);
  for (std::int64_t i : {0, 5, 999}) EXPECT_DOUBLE_EQ(f(i), 3.5);
}

TEST(CostModels, TriangularShape) {
  const auto f = triangular_cost(100);
  EXPECT_DOUBLE_EQ(f(0), 100.0);
  EXPECT_DOUBLE_EQ(f(99), 1.0);
  EXPECT_DOUBLE_EQ(f(50), 50.0);
}

TEST(CostModels, ParabolicShape) {
  const auto f = parabolic_cost(10);
  EXPECT_DOUBLE_EQ(f(0), 100.0);
  EXPECT_DOUBLE_EQ(f(9), 1.0);
}

TEST(CostModels, DecreasingPolyMatchesSpecials) {
  const auto t = triangular_cost(50);
  const auto p1 = decreasing_poly_cost(50, 1);
  const auto q = parabolic_cost(50);
  const auto p2 = decreasing_poly_cost(50, 2);
  for (std::int64_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(t(i), p1(i));
    EXPECT_DOUBLE_EQ(q(i), p2(i));
  }
}

TEST(CostModels, DegreeZeroIsUniform) {
  const auto f = decreasing_poly_cost(10, 0);
  for (std::int64_t i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(f(i), 1.0);
}

TEST(CostModels, HeadHeavyCutoff) {
  const auto f = head_heavy_cost(1000, 0.1, 100.0, 1.0);
  EXPECT_DOUBLE_EQ(f(0), 100.0);
  EXPECT_DOUBLE_EQ(f(99), 100.0);
  EXPECT_DOUBLE_EQ(f(100), 1.0);
  EXPECT_DOUBLE_EQ(f(999), 1.0);
}

TEST(CostModels, HeadHeavyWorkSplit) {
  // Paper Fig. 12: first 10% at 100 units holds ~10x the tail's work.
  const auto f = head_heavy_cost(50000, 0.1, 100.0, 1.0);
  const double head = total_cost([&](std::int64_t i) { return i < 5000 ? f(i) : 0.0; }, 50000);
  const double total = total_cost(f, 50000);
  EXPECT_NEAR(head / total, 100.0 * 5000 / (100.0 * 5000 + 45000), 1e-9);
}

TEST(CostModels, TotalCostTriangular) {
  EXPECT_DOUBLE_EQ(total_cost(triangular_cost(100), 100), 5050.0);
}

TEST(CostModels, MaxCost) {
  EXPECT_DOUBLE_EQ(max_cost(triangular_cost(100), 100), 100.0);
  EXPECT_DOUBLE_EQ(max_cost(uniform_cost(2.0), 10), 2.0);
}

TEST(CostModels, CvUniformIsZero) {
  EXPECT_DOUBLE_EQ(cost_cv(uniform_cost(5.0), 100), 0.0);
}

TEST(CostModels, CvGrowsWithSkew) {
  const double cv_tri = cost_cv(triangular_cost(1000), 1000);
  const double cv_par = cost_cv(parabolic_cost(1000), 1000);
  EXPECT_GT(cv_tri, 0.3);
  EXPECT_GT(cv_par, cv_tri);
}

TEST(CostModels, CvEmptyLoopIsZero) {
  EXPECT_DOUBLE_EQ(cost_cv(uniform_cost(), 0), 0.0);
}

}  // namespace
}  // namespace afs
