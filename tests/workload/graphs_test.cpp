#include "workload/graphs.hpp"

#include <gtest/gtest.h>

namespace afs {
namespace {

TEST(RandomGraph, DeterministicInSeed) {
  const auto a = random_graph(64, 0.1, 42);
  const auto b = random_graph(64, 0.1, 42);
  EXPECT_EQ(a, b);
}

TEST(RandomGraph, DifferentSeedsDiffer) {
  EXPECT_NE(random_graph(64, 0.1, 1), random_graph(64, 0.1, 2));
}

TEST(RandomGraph, EdgeDensityNearP) {
  const std::int64_t n = 256;
  const auto g = random_graph(n, 0.08, 7);
  const double density = static_cast<double>(edge_count(g)) /
                         static_cast<double>(n * (n - 1));
  EXPECT_NEAR(density, 0.08, 0.01);
}

TEST(RandomGraph, NoSelfLoops) {
  const auto g = random_graph(100, 0.5, 3);
  for (std::int64_t i = 0; i < 100; ++i) EXPECT_EQ(g(i, i), 0);
}

TEST(RandomGraph, ProbabilityZeroIsEmpty) {
  EXPECT_EQ(edge_count(random_graph(50, 0.0, 1)), 0);
}

TEST(RandomGraph, ProbabilityOneIsComplete) {
  const std::int64_t n = 20;
  EXPECT_EQ(edge_count(random_graph(n, 1.0, 1)), n * (n - 1));
}

TEST(CliqueGraph, EdgeCountIsCliqueSized) {
  const auto g = clique_graph(640, 320);
  EXPECT_EQ(edge_count(g), 320 * 319);
}

TEST(CliqueGraph, NoEdgesOutsideClique) {
  const auto g = clique_graph(10, 4);
  for (std::int64_t i = 0; i < 10; ++i)
    for (std::int64_t j = 0; j < 10; ++j)
      if (i >= 4 || j >= 4) {
        EXPECT_EQ(g(i, j), 0);
      }
}

TEST(CliqueGraph, EmptyCliqueIsEmptyGraph) {
  EXPECT_EQ(edge_count(clique_graph(10, 0)), 0);
}

TEST(CliqueGraph, FullCliqueIsComplete) {
  EXPECT_EQ(edge_count(clique_graph(8, 8)), 8 * 7);
}

}  // namespace
}  // namespace afs
