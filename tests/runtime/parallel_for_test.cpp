#include "runtime/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "sched/registry.hpp"
#include "util/stopwatch.hpp"

namespace afs {
namespace {

TEST(ParallelFor, SumsViaChunks) {
  ThreadPool pool(4);
  auto sched = make_scheduler("GSS");
  std::atomic<std::int64_t> sum{0};
  parallel_for(pool, *sched, 1000, [&sum](IterRange r, int) {
    std::int64_t local = 0;
    for (std::int64_t i = r.begin; i < r.end; ++i) local += i;
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), 1000 * 999 / 2);
}

TEST(ParallelForEach, VisitsEveryIndexOnce) {
  ThreadPool pool(3);
  auto sched = make_scheduler("AFS");
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  parallel_for_each(pool, *sched, 257, [&hits](std::int64_t i, int) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, WorkerIdsInRange) {
  ThreadPool pool(4);
  auto sched = make_scheduler("SS");
  std::atomic<bool> bad{false};
  parallel_for(pool, *sched, 100, [&bad](IterRange, int w) {
    if (w < 0 || w >= 4) bad.store(true);
  });
  EXPECT_FALSE(bad.load());
}

TEST(ParallelFor, EmptyLoopRunsNothing) {
  ThreadPool pool(4);
  auto sched = make_scheduler("FACTORING");
  std::atomic<int> calls{0};
  parallel_for(pool, *sched, 0, [&calls](IterRange, int) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, StartDelaysHoldBackWorkers) {
  // With one worker delayed and SS scheduling, the delayed worker must
  // still find the pool drained or pick up remaining work correctly.
  ThreadPool pool(2);
  auto sched = make_scheduler("SS");
  ParallelForOptions opts;
  opts.start_delays = {0.0, 0.05};
  std::atomic<std::int64_t> executed{0};
  Stopwatch sw;
  parallel_for(
      pool, *sched, 50,
      [&executed](IterRange r, int) { executed.fetch_add(r.size()); }, opts);
  EXPECT_EQ(executed.load(), 50);
  EXPECT_GE(sw.seconds(), 0.0);  // sanity: no deadlock, returns promptly
}

TEST(ParallelFor, SequentialOuterLoopReusesScheduler) {
  ThreadPool pool(4);
  auto sched = make_scheduler("AFS");
  std::vector<std::atomic<int>> hits(100);
  for (auto& h : hits) h.store(0);
  for (int epoch = 0; epoch < 5; ++epoch) {
    parallel_for(pool, *sched, 100, [&hits](IterRange r, int) {
      for (std::int64_t i = r.begin; i < r.end; ++i)
        hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
  }
  for (const auto& h : hits) EXPECT_EQ(h.load(), 5);
  EXPECT_EQ(sched->stats().loops, 5);
}

TEST(ParallelFor, ChunksAscendWithinBody) {
  ThreadPool pool(1);
  auto sched = make_scheduler("GSS");
  std::vector<std::int64_t> order;
  parallel_for(pool, *sched, 64, [&order](IterRange r, int) {
    order.push_back(r.begin);
  });
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

}  // namespace
}  // namespace afs
