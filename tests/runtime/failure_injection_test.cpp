// Failure injection: a loop body that throws must not deadlock the pool,
// must surface the exception to the caller, and must leave the scheduler
// reusable (start_loop fully resets per-loop state).
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "runtime/parallel_for.hpp"
#include "sched/registry.hpp"

namespace afs {
namespace {

class ThrowingBody : public ::testing::TestWithParam<std::string> {};

TEST_P(ThrowingBody, ExceptionPropagatesAndSchedulerStaysUsable) {
  ThreadPool pool(4);
  auto sched = make_scheduler(GetParam());

  std::atomic<bool> thrown{false};
  EXPECT_THROW(
      parallel_for(pool, *sched, 200,
                   [&thrown](IterRange r, int) {
                     // Exactly one chunk throws (the one containing i=37).
                     if (r.begin <= 37 && 37 < r.end &&
                         !thrown.exchange(true))
                       throw std::runtime_error("injected");
                   }),
      std::runtime_error);

  // The same scheduler and pool must run a fresh loop correctly.
  std::atomic<std::int64_t> count{0};
  parallel_for(pool, *sched, 300, [&count](IterRange r, int) {
    count.fetch_add(r.size(), std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 300) << GetParam();
}

TEST_P(ThrowingBody, OtherWorkersDrainTheLoopDespiteOneFailure) {
  // parallel_for joins all workers: even though one worker's body threw,
  // the loop's remaining iterations were still handed out and executed.
  ThreadPool pool(4);
  auto sched = make_scheduler(GetParam());
  std::atomic<std::int64_t> executed{0};
  std::atomic<bool> thrown{false};
  try {
    parallel_for(pool, *sched, 500, [&](IterRange r, int) {
      if (r.begin == 0 && !thrown.exchange(true))
        throw std::runtime_error("injected");
      executed.fetch_add(r.size(), std::memory_order_relaxed);
    });
    FAIL() << "expected the injected exception";
  } catch (const std::runtime_error&) {
  }
  // Everything except the poisoned chunk ran.
  EXPECT_GE(executed.load(), 500 - 250);
  EXPECT_LT(executed.load(), 500);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, ThrowingBody,
                         ::testing::Values("GSS", "AFS", "STATIC",
                                           "MOD-FACTORING", "FACTORING"),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           std::string s = param_info.param;
                           for (char& c : s)
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return s;
                         });

TEST(FailureInjection, AfsLeExceptionDoesNotCorruptSeeding) {
  // AFS-LE logs executed ranges per worker; an exception mid-epoch must
  // not make the next epoch lose or duplicate iterations.
  ThreadPool pool(4);
  auto sched = make_scheduler("AFS-LE");
  std::atomic<bool> thrown{false};
  try {
    parallel_for(pool, *sched, 128, [&thrown](IterRange, int) {
      if (!thrown.exchange(true)) throw std::runtime_error("injected");
    });
  } catch (const std::runtime_error&) {
  }
  for (int epoch = 0; epoch < 3; ++epoch) {
    std::vector<std::atomic<int>> hits(128);
    for (auto& h : hits) h.store(0);
    parallel_for(pool, *sched, 128, [&hits](IterRange r, int) {
      for (std::int64_t i = r.begin; i < r.end; ++i)
        hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1) << "epoch " << epoch;
  }
}

}  // namespace
}  // namespace afs
