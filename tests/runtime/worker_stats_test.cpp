#include "runtime/worker_stats.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "sched/registry.hpp"

namespace afs {
namespace {

TEST(WorkerStats, CountsEveryIterationOnce) {
  ThreadPool pool(4);
  auto sched = make_scheduler("AFS");
  const RunStats stats =
      parallel_for_timed(pool, *sched, 1000, [](IterRange, int) {});
  EXPECT_EQ(stats.total_iterations(), 1000);
  EXPECT_EQ(stats.workers.size(), 4u);
}

TEST(WorkerStats, ChunkCountsMatchSchedulerGrabs) {
  ThreadPool pool(3);
  auto sched = make_scheduler("GSS");
  const RunStats stats =
      parallel_for_timed(pool, *sched, 500, [](IterRange, int) {});
  std::int64_t chunks = 0;
  for (const auto& w : stats.workers) chunks += w.chunks;
  EXPECT_EQ(chunks, sched->stats().total().total_grabs());
}

TEST(WorkerStats, StaticIterationSplitIsEven) {
  ThreadPool pool(4);
  auto sched = make_scheduler("STATIC");
  const RunStats stats =
      parallel_for_timed(pool, *sched, 400, [](IterRange, int) {});
  for (const auto& w : stats.workers) EXPECT_EQ(w.iterations, 100);
  EXPECT_DOUBLE_EQ(stats.iteration_imbalance(), 1.0);
}

TEST(WorkerStats, BusyTimeAccumulates) {
  ThreadPool pool(2);
  auto sched = make_scheduler("CHUNK(10)");
  const RunStats stats =
      parallel_for_timed(pool, *sched, 20, [](IterRange, int) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      });
  double busy = 0.0;
  for (const auto& w : stats.workers) busy += w.busy_seconds;
  EXPECT_GE(busy, 0.003);  // two chunks x 2ms, conservatively
  EXPECT_GE(stats.elapsed_seconds, 0.0);
}

TEST(WorkerStats, ImbalanceDetectsSkew) {
  // One iteration is 50x the others; with CHUNK(1000) (a single worker
  // takes everything) imbalance is the worker count.
  ThreadPool pool(4);
  auto sched = make_scheduler("CHUNK(1000)");
  const RunStats stats =
      parallel_for_timed(pool, *sched, 1000, [](IterRange, int) {});
  EXPECT_DOUBLE_EQ(stats.iteration_imbalance(), 4.0);
}

TEST(WorkerStats, EmptyLoop) {
  ThreadPool pool(4);
  auto sched = make_scheduler("GSS");
  const RunStats stats =
      parallel_for_timed(pool, *sched, 0, [](IterRange, int) {});
  EXPECT_EQ(stats.total_iterations(), 0);
  EXPECT_DOUBLE_EQ(stats.iteration_imbalance(), 1.0);
}

}  // namespace
}  // namespace afs
