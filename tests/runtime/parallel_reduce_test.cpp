#include "runtime/parallel_reduce.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <climits>
#include <string>

#include "sched/registry.hpp"

namespace afs {
namespace {

TEST(ParallelReduce, IntegerSumExactUnderEveryScheduler) {
  ThreadPool pool(4);
  for (const char* spec : {"SS", "GSS", "AFS", "STATIC", "TRAPEZOID", "WS"}) {
    auto sched = make_scheduler(spec);
    const std::int64_t got = parallel_sum<std::int64_t>(
        pool, *sched, 10000, [](std::int64_t i) { return i; });
    EXPECT_EQ(got, 10000LL * 9999 / 2) << spec;
  }
}

TEST(ParallelReduce, MaxReduction) {
  ThreadPool pool(3);
  auto sched = make_scheduler("FACTORING");
  const std::int64_t got = parallel_reduce<std::int64_t>(
      pool, *sched, 1000, INT64_MIN,
      [](IterRange r, int) {
        std::int64_t m = INT64_MIN;
        for (std::int64_t i = r.begin; i < r.end; ++i)
          m = std::max(m, (i * 37) % 1009);
        return m;
      },
      [](std::int64_t a, std::int64_t b) { return std::max(a, b); });
  std::int64_t expect = INT64_MIN;
  for (std::int64_t i = 0; i < 1000; ++i)
    expect = std::max(expect, (i * 37) % 1009);
  EXPECT_EQ(got, expect);
}

TEST(ParallelReduce, EmptyLoopReturnsIdentity) {
  // `identity` must be a true identity of `combine`: it seeds every
  // worker's accumulator and the final fold.
  ThreadPool pool(4);
  auto sched = make_scheduler("GSS");
  const int got = parallel_reduce<int>(
      pool, *sched, 0, 0, [](IterRange, int) { return 0; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(got, 0);

  const int got_max = parallel_reduce<int>(
      pool, *sched, 0, INT_MIN, [](IterRange, int) { return 0; },
      [](int a, int b) { return std::max(a, b); });
  EXPECT_EQ(got_max, INT_MIN);
}

TEST(ParallelReduce, NonCommutativeCombineSeesWorkerOrder) {
  // Combining per-worker partials happens in worker-id order; with STATIC
  // assignment the result is therefore fully deterministic even for a
  // non-commutative operation (string concatenation of worker tags).
  ThreadPool pool(3);
  auto sched = make_scheduler("STATIC");
  const std::string got = parallel_reduce<std::string>(
      pool, *sched, 3, std::string{},
      [](IterRange r, int) {
        std::string s;
        for (std::int64_t i = r.begin; i < r.end; ++i)
          s += static_cast<char>('a' + i);
        return s;
      },
      [](std::string a, std::string b) { return a + b; });
  EXPECT_EQ(got, "abc");
}

TEST(ParallelReduce, DoubleSumMatchesSerialWithinTolerance) {
  ThreadPool pool(4);
  auto sched = make_scheduler("AFS");
  const double got = parallel_sum<double>(
      pool, *sched, 100000, [](std::int64_t i) { return 1.0 / (1.0 + i); });
  double expect = 0.0;
  for (std::int64_t i = 0; i < 100000; ++i) expect += 1.0 / (1.0 + i);
  EXPECT_NEAR(got, expect, 1e-9);
}

}  // namespace
}  // namespace afs
