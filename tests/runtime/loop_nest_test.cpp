#include "runtime/loop_nest.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "sched/registry.hpp"

namespace afs {
namespace {

TEST(Index2D, RoundTripsFlatAndPair) {
  const Index2D space{7, 11};
  EXPECT_EQ(space.size(), 77);
  for (std::int64_t r = 0; r < 7; ++r)
    for (std::int64_t c = 0; c < 11; ++c) {
      const std::int64_t k = space.flat(r, c);
      EXPECT_EQ(space.row(k), r);
      EXPECT_EQ(space.col(k), c);
    }
}

TEST(Index2D, RowMajorAdjacency) {
  const Index2D space{4, 5};
  EXPECT_EQ(space.flat(0, 4) + 1, space.flat(1, 0));
}

TEST(ParallelFor2D, VisitsEveryCellOnce) {
  ThreadPool pool(4);
  auto sched = make_scheduler("AFS");
  std::vector<std::atomic<int>> hits(12 * 9);
  for (auto& h : hits) h.store(0);
  parallel_for_2d(pool, *sched, 12, 9,
                  [&hits](std::int64_t r, std::int64_t c, int) {
                    hits[static_cast<std::size_t>(r * 9 + c)].fetch_add(1);
                  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor2D, ZeroDimensions) {
  ThreadPool pool(2);
  auto sched = make_scheduler("GSS");
  std::atomic<int> calls{0};
  parallel_for_2d(pool, *sched, 0, 9,
                  [&calls](std::int64_t, std::int64_t, int) { calls.fetch_add(1); });
  parallel_for_2d(pool, *sched, 9, 0,
                  [&calls](std::int64_t, std::int64_t, int) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(RunEpochs, BodySeesEveryEpochIterationPair) {
  ThreadPool pool(3);
  auto sched = make_scheduler("AFS");
  std::vector<std::atomic<int>> hits(5 * 40);
  for (auto& h : hits) h.store(0);
  run_epochs(pool, *sched, 5, 40,
             [&hits](int e, std::int64_t i, int) {
               hits[static_cast<std::size_t>(e * 40 + i)].fetch_add(1);
             });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(sched->stats().loops, 5);
}

TEST(RunEpochs, ZeroEpochsRunsNothing) {
  ThreadPool pool(2);
  auto sched = make_scheduler("GSS");
  std::atomic<int> calls{0};
  run_epochs(pool, *sched, 0, 100,
             [&calls](int, std::int64_t, int) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

}  // namespace
}  // namespace afs
