#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/cancel.hpp"
#include "util/check.hpp"

namespace afs {
namespace {

TEST(ThreadPool, RunsJobOnEveryWorker) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::mutex m;
  std::set<int> ids;
  pool.run_on_all([&](int w) {
    count.fetch_add(1);
    std::scoped_lock lock(m);
    ids.insert(w);
  });
  EXPECT_EQ(count.load(), 4);
  EXPECT_EQ(ids, (std::set<int>{0, 1, 2, 3}));
}

TEST(ThreadPool, SizeReported) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3);
}

TEST(ThreadPool, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool(0), CheckFailure);
}

TEST(ThreadPool, ReusableManyTimes) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i)
    pool.run_on_all([&](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, PropagatesWorkerException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run_on_all([](int w) {
                 if (w == 2) throw std::runtime_error("boom");
               }),
               std::runtime_error);
  // Pool must still be usable afterwards.
  std::atomic<int> count{0};
  pool.run_on_all([&](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 4);
}

TEST(ThreadPool, SingleWorkerPool) {
  ThreadPool pool(1);
  int value = 0;
  pool.run_on_all([&](int w) { value = w + 1; });
  EXPECT_EQ(value, 1);
}

TEST(ThreadPool, ManyWorkersOnFewCores) {
  // Correctness must not depend on hardware concurrency.
  ThreadPool pool(16);
  std::atomic<int> count{0};
  pool.run_on_all([&](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  for (int i = 0; i < 10; ++i) {
    ThreadPool pool(3);
    pool.run_on_all([](int) {});
  }
  SUCCEED();
}

TEST(ThreadPool, SubmitAndDrainRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&] { count.fetch_add(1); });
  pool.drain();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, DrainOnEmptyQueueIsNoOp) {
  ThreadPool pool(2);
  pool.drain();
  SUCCEED();
}

TEST(ThreadPool, SubmitRejectsNullTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(std::function<void()>{}), CheckFailure);
}

TEST(ThreadPool, DrainRethrowsFirstTaskException) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([] { throw std::runtime_error("task boom"); });
  for (int i = 0; i < 10; ++i)
    pool.submit([&] { count.fetch_add(1); });
  EXPECT_THROW(pool.drain(), std::runtime_error);
  // A throwing task must not take the others down with it...
  EXPECT_EQ(count.load(), 10);
  // ...and the error must be cleared: the pool stays usable.
  pool.submit([&] { count.fetch_add(1); });
  pool.drain();
  EXPECT_EQ(count.load(), 11);
}

TEST(ThreadPool, TasksQueuedAtDestructionStillRun) {
  // Destroying the pool with work queued must execute it, not drop it.
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i)
      pool.submit([&] { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, CancelledTokenDiscardsQueuedTasks) {
  // The sweep-deadline contract: once the token fires, work that has not
  // started must never start — drain() waits only for the in-flight task.
  ThreadPool pool(1);
  CancelToken token;
  pool.set_cancel(&token);
  std::atomic<int> ran{0};
  std::promise<void> started;
  std::atomic<bool> release{false};
  pool.submit([&] {
    started.set_value();
    while (!release.load()) std::this_thread::yield();
    ran.fetch_add(1);
  });
  for (int i = 0; i < 25; ++i) pool.submit([&] { ran.fetch_add(1); });
  started.get_future().wait();  // the 25 are definitely still queued
  token.cancel();
  release.store(true);
  pool.drain();
  EXPECT_EQ(ran.load(), 1);  // only the already-running task finished
  EXPECT_EQ(pool.discarded(), 25u);
}

TEST(ThreadPool, TasksSubmittedAfterCancellationNeverStart) {
  ThreadPool pool(2);
  CancelToken token;
  token.cancel();
  pool.set_cancel(&token);
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) pool.submit([&] { ran.fetch_add(1); });
  pool.drain();
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(pool.discarded(), 10u);
}

TEST(ThreadPool, UnfiredTokenChangesNothing) {
  ThreadPool pool(2);
  CancelToken token;
  pool.set_cancel(&token);
  std::atomic<int> ran{0};
  for (int i = 0; i < 40; ++i) pool.submit([&] { ran.fetch_add(1); });
  pool.drain();
  EXPECT_EQ(ran.load(), 40);
  EXPECT_EQ(pool.discarded(), 0u);
}

TEST(ThreadPool, SubmitInterleavesWithRunOnAll) {
  ThreadPool pool(3);
  std::atomic<int> tasks{0}, jobs{0};
  pool.submit([&] { tasks.fetch_add(1); });
  pool.drain();
  pool.run_on_all([&](int) { jobs.fetch_add(1); });
  pool.submit([&] { tasks.fetch_add(1); });
  pool.drain();
  EXPECT_EQ(tasks.load(), 2);
  EXPECT_EQ(jobs.load(), 3);
}

}  // namespace
}  // namespace afs
