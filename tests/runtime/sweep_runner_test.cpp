// Tests for the crash-safe sweep runner: bit-identical merges across
// serial/parallel/resumed execution, the checkpoint protocol, the
// deterministic retry schedule, cooperative timeouts, and the failure
// report. Cheap cells are synthetic (a pure function of the cell key);
// the simulator only appears where the contract under test is "a real
// simulation run obeys the token".
#include "runtime/sweep_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "kernels/gauss.hpp"
#include "kernels/synthetic.hpp"
#include "machines/machines.hpp"
#include "runtime/cell_executor.hpp"
#include "sched/registry.hpp"
#include "sim/machine_sim.hpp"
#include "util/check.hpp"

namespace afs {
namespace {

namespace fs = std::filesystem;

/// Bitwise equality of every field the checkpoint serializes.
bool identical(const SimResult& a, const SimResult& b) {
  if (!(a.makespan == b.makespan && a.busy == b.busy && a.sync == b.sync &&
        a.comm == b.comm && a.idle == b.idle && a.barrier == b.barrier &&
        a.stall_time == b.stall_time && a.hits == b.hits &&
        a.misses == b.misses && a.invalidations == b.invalidations &&
        a.units_transferred == b.units_transferred &&
        a.local_grabs == b.local_grabs && a.remote_grabs == b.remote_grabs &&
        a.central_grabs == b.central_grabs && a.iterations == b.iterations &&
        a.lost_processor_count == b.lost_processor_count &&
        a.stolen_under_fault == b.stolen_under_fault &&
        a.abandoned_iterations == b.abandoned_iterations &&
        a.sched_stats.loops == b.sched_stats.loops &&
        a.sched_stats.queues.size() == b.sched_stats.queues.size()))
    return false;
  for (std::size_t q = 0; q < a.sched_stats.queues.size(); ++q) {
    const QueueStats& qa = a.sched_stats.queues[q];
    const QueueStats& qb = b.sched_stats.queues[q];
    if (!(qa.local_grabs == qb.local_grabs &&
          qa.remote_grabs == qb.remote_grabs &&
          qa.iters_local == qb.iters_local &&
          qa.iters_remote == qb.iters_remote))
      return false;
  }
  return true;
}

/// A synthetic but awkward SimResult: a pure function of (label, procs)
/// with values that punish any serialization that rounds (thirds, huge
/// magnitudes, a denormal) plus per-queue stats.
SimResult synthetic_result(const std::string& label, int procs) {
  SimResult r;
  const double base = static_cast<double>(label.size() * 1000 + procs);
  r.makespan = base / 3.0;
  r.busy = base * 1e12 + 1.0 / 7.0;
  r.sync = 5e-324;  // smallest denormal
  r.comm = -0.0;
  r.idle = base * 0.1;
  r.barrier = 1e-300;
  r.stall_time = 0.0;
  r.hits = static_cast<std::int64_t>(base) * 1'000'000'007LL;
  r.misses = procs;
  r.invalidations = -procs;  // counters are signed; keep the parser honest
  r.units_transferred = base + 0.5;
  r.local_grabs = 1;
  r.remote_grabs = 2;
  r.central_grabs = 3;
  r.iterations = 4;
  r.lost_processor_count = 0;
  r.stolen_under_fault = 5;
  r.abandoned_iterations = 6;
  r.sched_stats.loops = procs;
  r.sched_stats.queues.resize(static_cast<std::size_t>(procs));
  for (int q = 0; q < procs; ++q) {
    r.sched_stats.queues[static_cast<std::size_t>(q)] = {q + 1, q + 2,
                                                         q * 10LL, q * 20LL};
  }
  return r;
}

std::vector<SweepCellSpec> synthetic_cells(
    const std::vector<std::string>& labels, const std::vector<int>& procs,
    std::atomic<int>* computed = nullptr) {
  std::vector<SweepCellSpec> cells;
  for (const std::string& label : labels)
    for (int p : procs)
      cells.push_back({label, p, [label, p, computed](const CancelToken&) {
                         if (computed) computed->fetch_add(1);
                         return synthetic_result(label, p);
                       }});
  return cells;
}

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

TEST(SweepRunner, SerialAndParallelMergeBitIdentical) {
  // Real simulations: the merged map must not depend on which thread ran
  // a cell or in what order cells finished.
  const auto program = GaussKernel::program(96);
  const std::vector<std::string> labels{"AFS", "GSS", "SS"};
  const std::vector<int> procs{1, 2, 4};
  auto make_cells = [&] {
    std::vector<SweepCellSpec> cells;
    for (const std::string& label : labels)
      for (int p : procs)
        cells.push_back({label, p, [&program, label, p](const CancelToken& t) {
                           SimOptions opts;
                           opts.cancel = &t;
                           MachineSim sim(iris(), opts);
                           auto sched = make_scheduler(label);
                           return sim.run(program, *sched, p);
                         }});
    return cells;
  };

  SweepOptions serial;
  SweepOptions parallel;
  parallel.jobs = 4;
  const SweepOutcome a = run_sweep("t", make_cells(), serial);
  const SweepOutcome b = run_sweep("t", make_cells(), parallel);

  ASSERT_TRUE(a.complete());
  ASSERT_TRUE(b.complete());
  ASSERT_EQ(a.results.size(), labels.size());
  for (const std::string& label : labels)
    for (int p : procs) {
      ASSERT_TRUE(identical(a.results.at(label).at(p),
                            b.results.at(label).at(p)))
          << label << " P=" << p;
    }
}

TEST(SweepRunner, SerializationRoundTripsBitExactly) {
  const SimResult r = synthetic_result("AFS(k=2)", 7);
  SimResult back;
  ASSERT_TRUE(parse_sim_result(serialize_sim_result(r), back));
  EXPECT_TRUE(identical(r, back));

  // And for a real simulation result, queues included.
  MachineSim sim(ksr1());
  auto sched = make_scheduler("AFS");
  const SimResult real = sim.run(GaussKernel::program(64), *sched, 8);
  ASSERT_TRUE(parse_sim_result(serialize_sim_result(real), back));
  EXPECT_TRUE(identical(real, back));
}

TEST(SweepRunner, ParseRejectsCorruption) {
  const std::string good = serialize_sim_result(synthetic_result("GSS", 3));
  SimResult out;
  ASSERT_TRUE(parse_sim_result(good, out));

  EXPECT_FALSE(parse_sim_result("", out));
  EXPECT_FALSE(parse_sim_result("wrong-schema\n", out));
  // Truncation anywhere — including losing only the end marker — fails.
  for (std::size_t cut : {good.size() / 4, good.size() / 2, good.size() - 2})
    EXPECT_FALSE(parse_sim_result(good.substr(0, cut), out)) << cut;
  // A non-numeric field fails.
  std::string bad = good;
  bad.replace(bad.find("busy "), 5, "busy x");
  EXPECT_FALSE(parse_sim_result(bad, out));
}

TEST(SweepRunner, ResumeRecomputesOnlyMissingOrCorruptCells) {
  const std::vector<std::string> labels{"AFS", "GSS"};
  const std::vector<int> procs{1, 2, 4};
  const std::string dir = fresh_dir("sweep_resume");

  SweepOptions opts;
  opts.checkpoint_dir = dir;
  std::atomic<int> computed{0};
  const SweepOutcome first =
      run_sweep("resume-test", synthetic_cells(labels, procs, &computed), opts);
  ASSERT_TRUE(first.complete());
  EXPECT_EQ(computed.load(), 6);
  EXPECT_EQ(first.cells_resumed, 0);

  // Simulate a crash that lost one cell and half-wrote another.
  ASSERT_TRUE(fs::remove(cell_checkpoint_path(dir, "AFS", 2)));
  {
    std::ofstream trunc(cell_checkpoint_path(dir, "GSS", 4),
                        std::ios::trunc);
    trunc << "afs-cell-v1\nmakespan 0x1p+0\n";  // truncated checkpoint
  }

  computed.store(0);
  opts.resume = true;
  const SweepOutcome second =
      run_sweep("resume-test", synthetic_cells(labels, procs, &computed), opts);
  ASSERT_TRUE(second.complete());
  EXPECT_EQ(computed.load(), 2);  // exactly the lost and the corrupt cell
  EXPECT_EQ(second.cells_resumed, 4);
  for (const std::string& label : labels)
    for (int p : procs)
      EXPECT_TRUE(identical(first.results.at(label).at(p),
                            second.results.at(label).at(p)))
          << label << " P=" << p;
}

TEST(SweepRunner, ResumeRejectsForeignManifest) {
  const std::vector<std::string> labels{"AFS"};
  const std::vector<int> procs{1, 2};
  const std::string dir = fresh_dir("sweep_foreign");

  SweepOptions opts;
  opts.checkpoint_dir = dir;
  ASSERT_TRUE(run_sweep("sweep-one", synthetic_cells(labels, procs), opts)
                  .complete());

  // Same directory, different sweep id: checkpoints must not be merged.
  std::atomic<int> computed{0};
  opts.resume = true;
  const SweepOutcome other = run_sweep(
      "sweep-two", synthetic_cells(labels, procs, &computed), opts);
  ASSERT_TRUE(other.complete());
  EXPECT_EQ(other.cells_resumed, 0);
  EXPECT_EQ(computed.load(), 2);
}

TEST(SweepRunner, RetryScheduleIsDeterministic) {
  SweepOptions opts;
  opts.max_retries = 3;
  opts.backoff_base = 0.05;
  opts.backoff_max = 10.0;
  // Pure: same cell and attempt, same delay. Different cells decorrelate.
  for (int attempt = 1; attempt <= 3; ++attempt)
    EXPECT_EQ(retry_backoff(opts, "AFS", 4, attempt),
              retry_backoff(opts, "AFS", 4, attempt));
  EXPECT_NE(retry_backoff(opts, "AFS", 4, 1), retry_backoff(opts, "GSS", 4, 1));
  // Jitter is in [0.5, 1.5) x base*2^(attempt-1), clamped.
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const double d = retry_backoff(opts, "SS", 2, attempt);
    const double scale = opts.backoff_base * std::ldexp(1.0, attempt - 1);
    EXPECT_GE(d, std::min(0.5 * scale, opts.backoff_max));
    EXPECT_LE(d, std::min(1.5 * scale, opts.backoff_max));
  }
  SweepOptions clamped = opts;
  clamped.backoff_max = 0.01;
  EXPECT_EQ(retry_backoff(clamped, "SS", 2, 10), 0.01);

  // End to end: a cell that fails twice then succeeds sleeps exactly the
  // schedule, on every rerun.
  auto flaky_sweep = [&] {
    std::vector<double> delays;
    SweepOptions o;
    o.max_retries = 3;
    o.sleep_fn = [&delays](double s) { delays.push_back(s); };
    std::atomic<int> calls{0};
    std::vector<SweepCellSpec> cells{
        {"FLAKY", 2, [&calls](const CancelToken&) {
           if (calls.fetch_add(1) < 2) throw std::runtime_error("transient");
           return synthetic_result("FLAKY", 2);
         }}};
    const SweepOutcome outcome = run_sweep("flaky", cells, o);
    EXPECT_TRUE(outcome.complete());
    return delays;
  };
  const std::vector<double> run1 = flaky_sweep();
  const std::vector<double> run2 = flaky_sweep();
  SweepOptions o;
  o.max_retries = 3;
  ASSERT_EQ(run1.size(), 2u);
  EXPECT_EQ(run1, run2);
  EXPECT_EQ(run1[0], retry_backoff(o, "FLAKY", 2, 1));
  EXPECT_EQ(run1[1], retry_backoff(o, "FLAKY", 2, 2));
}

TEST(SweepRunner, RetryBackoffSurvivesDegenerateInputs) {
  SweepOptions opts;
  opts.backoff_max = 10.0;

  // A zero (or negative) base means "retry immediately", not NaN/garbage.
  opts.backoff_base = 0.0;
  EXPECT_EQ(retry_backoff(opts, "AFS", 4, 1), 0.0);
  EXPECT_EQ(retry_backoff(opts, "AFS", 4, 7), 0.0);
  opts.backoff_base = -1.0;
  EXPECT_EQ(retry_backoff(opts, "AFS", 4, 1), 0.0);

  // Absurd attempt numbers must not overflow ldexp into inf before the
  // clamp: the delay saturates at backoff_max and stays finite.
  opts.backoff_base = 0.05;
  for (int attempt : {64, 1100, 10'000, 1'000'000'000}) {
    const double d = retry_backoff(opts, "AFS", 4, attempt);
    EXPECT_TRUE(std::isfinite(d)) << attempt;
    EXPECT_EQ(d, opts.backoff_max) << attempt;
  }
}

TEST(SweepRunner, RetryBackoffGoldenSchedule) {
  // The exact schedule is part of the service contract: clients and the
  // daemon both derive sleeps from it, and operators read these numbers
  // out of logs. Pin it so a "harmless" tweak to the hash or jitter shape
  // shows up as a test diff, not as a silently different fleet cadence.
  SweepOptions opts;  // defaults: base 0.05, max 2.0, seed 0xaf55eed
  const struct {
    const char* label;
    int procs;
    int attempt;
    double delay;
  } golden[] = {
      {"request", 0, 1, 0x1.d9038c80df98cp-5},
      {"request", 0, 2, 0x1.5284c4d65428p-4},
      {"request", 0, 3, 0x1.1e50cfaf2431bp-3},
      {"AFS", 4, 1, 0x1.c700aeeb2b13dp-5},
      {"GSS", 8, 2, 0x1.28bfa07f520e5p-3},
  };
  for (const auto& g : golden)
    EXPECT_EQ(retry_backoff(opts, g.label, g.procs, g.attempt), g.delay)
        << g.label << " P=" << g.procs << " attempt " << g.attempt;
}

TEST(SweepRunner, PoisonedCellIsNeverRetried) {
  // A PoisonedCellError is the sandbox saying "this cell has already
  // crashed its budget of workers" — retrying would just burn more
  // workers, so the runner records it and moves on.
  SweepOptions opts;
  opts.max_retries = 5;
  opts.sleep_fn = [](double) { FAIL() << "poison must not sleep/retry"; };
  int calls = 0;
  std::vector<SweepCellSpec> cells = synthetic_cells({"OK"}, {1});
  cells.push_back({"BAD", 2, [&calls](const CancelToken&) -> SimResult {
                     ++calls;
                     throw PoisonedCellError("quarantined after 3 crashes");
                   }});
  const SweepOutcome outcome = run_sweep("poison", cells, opts);
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(outcome.invariant_break());
  EXPECT_EQ(outcome.results.at("OK").size(), 1u);
  ASSERT_EQ(outcome.failures.size(), 1u);
  EXPECT_EQ(outcome.failures[0].kind, "poison");
  EXPECT_EQ(outcome.failures[0].attempts, 1);
  EXPECT_NE(outcome.failures[0].message.find("quarantined"),
            std::string::npos);
}

TEST(SweepRunner, DegradedModeIsNeverRetried) {
  // DegradedError means the worker pool is refusing new work entirely;
  // retrying the same cell against a dead pool is pointless.
  SweepOptions opts;
  opts.max_retries = 5;
  opts.sleep_fn = [](double) { FAIL() << "degraded must not sleep/retry"; };
  int calls = 0;
  std::vector<SweepCellSpec> cells{
      {"ANY", 1, [&calls](const CancelToken&) -> SimResult {
         ++calls;
         throw DegradedError("restart budget exhausted; cache-only");
       }}};
  const SweepOutcome outcome = run_sweep("degraded", cells, opts);
  EXPECT_EQ(calls, 1);
  ASSERT_EQ(outcome.failures.size(), 1u);
  EXPECT_EQ(outcome.failures[0].kind, "degraded");
  EXPECT_EQ(outcome.failures[0].attempts, 1);
}

TEST(SweepRunner, ExhaustedRetriesIsolateTheFailingCell) {
  SweepOptions opts;
  opts.max_retries = 1;
  opts.sleep_fn = [](double) {};
  std::vector<SweepCellSpec> cells = synthetic_cells({"OK"}, {1, 2});
  cells.push_back({"BAD", 1, [](const CancelToken&) -> SimResult {
                     throw std::runtime_error("always \"broken\"");
                   }});
  const SweepOutcome outcome = run_sweep("isolate", cells, opts);

  EXPECT_FALSE(outcome.complete());
  EXPECT_FALSE(outcome.invariant_break());
  EXPECT_EQ(outcome.results.at("OK").size(), 2u);  // neighbours unaffected
  ASSERT_EQ(outcome.failures.size(), 1u);
  EXPECT_EQ(outcome.failures[0].kind, "error");
  EXPECT_EQ(outcome.failures[0].attempts, 2);  // first try + one retry

  const std::string report = failure_report_json("isolate", outcome);
  EXPECT_NE(report.find("\"schema\":\"afs-sweep-failures-v1\""),
            std::string::npos);
  EXPECT_NE(report.find("\"sweep\":\"isolate\""), std::string::npos);
  EXPECT_NE(report.find("\"cells_total\":3"), std::string::npos);
  EXPECT_NE(report.find("\"cells_completed\":2"), std::string::npos);
  EXPECT_NE(report.find("\"cells_failed\":1"), std::string::npos);
  EXPECT_NE(report.find("\"scheduler\":\"BAD\",\"procs\":1,"
                        "\"kind\":\"error\",\"attempts\":2"),
            std::string::npos);
  EXPECT_NE(report.find("always \\\"broken\\\""), std::string::npos)
      << "message must be JSON-escaped: " << report;
}

TEST(SweepRunner, InvariantBreakIsNeverRetried) {
  SweepOptions opts;
  opts.max_retries = 5;
  int calls = 0;
  std::vector<SweepCellSpec> cells{
      {"BROKEN", 1, [&calls](const CancelToken&) -> SimResult {
         ++calls;
         AFS_CHECK_MSG(calls == 0, "engine contract violated");  // throws
         return synthetic_result("BROKEN", 1);
       }}};
  const SweepOutcome outcome = run_sweep("invariant", cells, opts);
  EXPECT_EQ(calls, 1);
  ASSERT_EQ(outcome.failures.size(), 1u);
  EXPECT_EQ(outcome.failures[0].kind, "invariant");
  EXPECT_TRUE(outcome.invariant_break());
}

TEST(SweepRunner, CellTimeoutInterruptsARealSimulation) {
  // SS over 50M iterations takes ~1s+ of wall clock (one event per grab);
  // a 50 ms deadline must cut it off at an event boundary long before the
  // end, and a timeout is not retried.
  const auto program = balanced_program(50'000'000);
  SweepOptions opts;
  opts.cell_timeout = 0.05;
  std::vector<SweepCellSpec> cells{
      {"SS", 2, [&program](const CancelToken& t) {
         SimOptions o;
         o.cancel = &t;
         MachineSim sim(iris(), o);
         auto sched = make_scheduler("SS");
         return sim.run(program, *sched, 2);
       }}};
  const SweepOutcome outcome = run_sweep("timeout", cells, opts);
  ASSERT_EQ(outcome.failures.size(), 1u);
  EXPECT_EQ(outcome.failures[0].kind, "timeout");
  EXPECT_EQ(outcome.failures[0].attempts, 1);
  EXPECT_TRUE(outcome.results.empty());  // no partial result escapes
}

TEST(SweepRunner, SweepTimeoutCancelsRunningAndQueuedCells) {
  // Two workers get stuck in cooperative cells; six more cells sit in the
  // queue. When the sweep deadline fires the stuck cells observe it and
  // the queued cells are discarded without ever starting.
  SweepOptions opts;
  opts.jobs = 2;
  opts.sweep_timeout = 0.05;
  std::atomic<int> started{0};
  std::vector<SweepCellSpec> cells;
  for (int p = 1; p <= 2; ++p)
    cells.push_back({"STUCK", p, [&started](const CancelToken& t) -> SimResult {
                       started.fetch_add(1);
                       for (;;)
                         if (t.cancelled())
                           throw CancelledError("observed deadline");
                     }});
  for (int p = 1; p <= 6; ++p)
    cells.push_back({"QUEUED", p, [&started, p](const CancelToken&) {
                       started.fetch_add(1);
                       return synthetic_result("QUEUED", p);
                     }});
  const SweepOutcome outcome = run_sweep("deadline", cells, opts);

  EXPECT_EQ(started.load(), 2);  // the queued six never began
  EXPECT_EQ(outcome.failures.size(), 8u);
  EXPECT_FALSE(outcome.invariant_break());
  for (const CellFailure& f : outcome.failures) {
    EXPECT_EQ(f.kind, "cancelled") << f.label;
    if (f.label == "QUEUED") {
      EXPECT_EQ(f.attempts, 0);
    }
  }
}

TEST(SweepRunner, RejectsDuplicateCellsAndBadOptions) {
  std::vector<SweepCellSpec> dup = synthetic_cells({"AFS"}, {2});
  dup.push_back(dup.front());
  EXPECT_THROW(run_sweep("dup", dup, SweepOptions{}), CheckFailure);

  SweepOptions bad;
  bad.jobs = 0;
  EXPECT_THROW(bad.validate(), CheckFailure);
  bad = SweepOptions{};
  bad.backoff_max = bad.backoff_base / 2.0;
  EXPECT_THROW(bad.validate(), CheckFailure);
}

TEST(SweepRunner, CheckpointPathsAreSanitizedAndCollisionFree) {
  // Labels that sanitize to the same stem must still map to distinct
  // files (the hash suffix), and path separators never escape the dir.
  const std::string a = cell_checkpoint_path("d", "AFS(k=2)", 4);
  const std::string b = cell_checkpoint_path("d", "AFS{k:2}", 4);
  EXPECT_NE(a, b);
  const std::string traversal = cell_checkpoint_path("d", "x/../../evil", 1);
  EXPECT_EQ(traversal.find("d/"), 0u);
  EXPECT_EQ(traversal.find('/', 2), std::string::npos)
      << "separators must not survive sanitization: " << traversal;
}

}  // namespace
}  // namespace afs
