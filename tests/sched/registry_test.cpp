#include "sched/registry.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace afs {
namespace {

TEST(Registry, CanonicalSpecs) {
  EXPECT_EQ(make_scheduler("SS")->name(), "SS");
  EXPECT_EQ(make_scheduler("GSS")->name(), "GSS");
  EXPECT_EQ(make_scheduler("GSS(2)")->name(), "GSS(2)");
  EXPECT_EQ(make_scheduler("CHUNK(16)")->name(), "CHUNK(16)");
  EXPECT_EQ(make_scheduler("FACTORING")->name(), "FACTORING");
  EXPECT_EQ(make_scheduler("TRAPEZOID")->name(), "TRAPEZOID");
  EXPECT_EQ(make_scheduler("STATIC")->name(), "STATIC");
  EXPECT_EQ(make_scheduler("BEST-STATIC")->name(), "BEST-STATIC");
  EXPECT_EQ(make_scheduler("MOD-FACTORING")->name(), "MOD-FACTORING");
  EXPECT_EQ(make_scheduler("AFS")->name(), "AFS");
  EXPECT_EQ(make_scheduler("AFS(k=2)")->name(), "AFS(k=2)");
  EXPECT_EQ(make_scheduler("AFS-LE")->name(), "AFS-LE");
}

TEST(Registry, Aliases) {
  EXPECT_EQ(make_scheduler("FACT")->name(), "FACTORING");
  EXPECT_EQ(make_scheduler("TSS")->name(), "TRAPEZOID");
  EXPECT_EQ(make_scheduler("MODFACT")->name(), "MOD-FACTORING");
  EXPECT_EQ(make_scheduler("BEST")->name(), "BEST-STATIC");
}

TEST(Registry, CaseInsensitive) {
  EXPECT_EQ(make_scheduler("gss")->name(), "GSS");
  EXPECT_EQ(make_scheduler("afs")->name(), "AFS");
  EXPECT_EQ(make_scheduler("Trapezoid")->name(), "TRAPEZOID");
}

TEST(Registry, ReverseWrapping) {
  EXPECT_EQ(make_scheduler("REV:GSS")->name(), "REV:GSS");
  EXPECT_EQ(make_scheduler("rev:factoring")->name(), "REV:FACTORING");
}

TEST(Registry, AfsStealDenomSpec) {
  auto s = make_scheduler("AFS(steal=2)");
  EXPECT_NE(s->name().find("steal=1/2"), std::string::npos);
}

TEST(Registry, UnknownSpecThrows) {
  EXPECT_THROW(make_scheduler("NOPE"), CheckFailure);
  EXPECT_THROW(make_scheduler(""), CheckFailure);
}

TEST(Registry, MalformedArgumentsThrowCheckFailure) {
  // Garbage inside the parentheses must surface as a CheckFailure naming
  // the spec, never as a bare std::invalid_argument from stoi.
  EXPECT_THROW(make_scheduler("CHUNK(abc)"), CheckFailure);
  EXPECT_THROW(make_scheduler("CHUNK()"), CheckFailure);
  EXPECT_THROW(make_scheduler("GSS(2x)"), CheckFailure);
  EXPECT_THROW(make_scheduler("TAPER(one)"), CheckFailure);
  EXPECT_THROW(make_scheduler("AFS(k=)"), CheckFailure);
  EXPECT_THROW(make_scheduler("AFS-RAND(?)"), CheckFailure);
}

TEST(Registry, MalformedArgumentMessageNamesTheSpec) {
  try {
    make_scheduler("CHUNK(abc)");
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("CHUNK(abc)"), std::string::npos);
  }
}

TEST(Registry, ExtendedSpecsResolve) {
  EXPECT_NO_THROW(make_scheduler("AFS-RAND"));
  EXPECT_NO_THROW(make_scheduler("AFS-RAND(4)"));
  EXPECT_NO_THROW(make_scheduler("WS"));
  EXPECT_NO_THROW(make_scheduler("REV:REV:GSS"));  // adapters compose
}

TEST(Registry, PaperSetContainsEightAlgorithms) {
  const auto specs = paper_scheduler_specs();
  EXPECT_EQ(specs.size(), 8u);
  for (const auto& spec : specs) EXPECT_NO_THROW(make_scheduler(spec));
}

TEST(Registry, ButterflySetIsDynamicTrio) {
  const auto specs = butterfly_scheduler_specs();
  EXPECT_EQ(specs.size(), 3u);
}

TEST(Registry, SchedulersAreFunctional) {
  // Every registry spec must produce a scheduler that can drain a loop.
  for (const auto& spec : paper_scheduler_specs()) {
    auto s = make_scheduler(spec);
    s->start_loop(50, 4);
    std::int64_t total = 0;
    int consecutive_done = 0;
    for (int w = 0; consecutive_done < 4; w = (w + 1) % 4) {
      const Grab g = s->next(w);
      if (g.done()) {
        ++consecutive_done;
      } else {
        consecutive_done = 0;
        total += g.range.size();
      }
    }
    EXPECT_EQ(total, 50) << spec;
  }
}

}  // namespace
}  // namespace afs
