#include "sched/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace afs {
namespace {

// ---------------------------------------------------------- drain_count --

TEST(DrainCount, KnownSmallValues) {
  EXPECT_EQ(drain_count(0, 4), 0);
  EXPECT_EQ(drain_count(1, 4), 1);
  // 100 with k=4: 100->75->56->42->31->23->17->12->9->6->4->3->2->1->0.
  EXPECT_EQ(drain_count(100, 4), 14);
}

TEST(DrainCount, KEqualsOneDrainsInOneGrab) {
  for (std::int64_t n : {1, 10, 1000000}) EXPECT_EQ(drain_count(n, 1), 1);
}

TEST(DrainCount, MatchesLemma31Order) {
  // Lemma 3.1: O(k log(N/k)). Verify the growth is within a constant of
  // k*ln(N/k) + k for a range of N, k.
  for (std::int64_t k : {2, 4, 8, 16}) {
    for (std::int64_t n : {100, 1000, 10000, 100000}) {
      const double bound =
          static_cast<double>(k) *
              std::log(static_cast<double>(n) / static_cast<double>(k)) +
          2.0 * static_cast<double>(k);
      EXPECT_LE(static_cast<double>(drain_count(n, k)), bound + 1.0)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(DrainCount, MonotoneInN) {
  for (std::int64_t n = 1; n < 500; ++n)
    EXPECT_LE(drain_count(n, 4), drain_count(n + 1, 4));
}

// -------------------------------------------------- Theorem 3.1 (sync) --

TEST(AfsSyncBound, ComposesOwnerAndThiefDrains) {
  EXPECT_EQ(afs_queue_sync_bound(800, 8, 8),
            drain_count(100, 8) + drain_count(100, 8));
  EXPECT_EQ(afs_queue_sync_bound(800, 8, 2),
            drain_count(100, 2) + drain_count(100, 8));
}

TEST(AfsSyncBound, SmallerKMeansFewerLocalOps) {
  EXPECT_LT(afs_queue_sync_bound(10000, 8, 2),
            afs_queue_sync_bound(10000, 8, 8));
}

// ---------------------------------------------- Theorem 3.2 (imbalance) --

TEST(ImbalanceBound, KEqualsPGivesOneIteration) {
  // The paper: with k = P all processors finish within one iteration.
  EXPECT_DOUBLE_EQ(afs_imbalance_bound(100000, 8, 8), 1.0);
  EXPECT_DOUBLE_EQ(afs_imbalance_bound(12345, 16, 16), 1.0);
}

TEST(ImbalanceBound, SmallKGrowsWithN) {
  const double b1 = afs_imbalance_bound(1000, 8, 2);
  const double b2 = afs_imbalance_bound(2000, 8, 2);
  EXPECT_NEAR(b2 - 1.0, 2.0 * (b1 - 1.0), 1e-9);
}

TEST(ImbalanceBound, FormulaMatchesPaper) {
  // N(P-k)/(P(P-1)k) + 1 at N=1000, P=8, k=2: 1000*6/(8*7*2)+1.
  EXPECT_NEAR(afs_imbalance_bound(1000, 8, 2), 1000.0 * 6 / 112 + 1, 1e-12);
}

TEST(ImbalanceBound, SingleProcessorDegenerate) {
  EXPECT_DOUBLE_EQ(afs_imbalance_bound(1000, 1, 1), 1.0);
}

// -------------------------------------------------- Theorem 3.3 (chunk) --

TEST(Theorem33Chunk, UniformWorkloadGivesNOverP) {
  EXPECT_EQ(theorem33_chunk(1000, 4, 0), 250);
}

TEST(Theorem33Chunk, TriangularGivesNOver2P) {
  EXPECT_EQ(theorem33_chunk(1000, 4, 1), 125);
}

TEST(Theorem33Chunk, ParabolicGivesNOver3P) {
  EXPECT_EQ(theorem33_chunk(1200, 4, 2), 100);
}

TEST(Theorem33Chunk, WorkFractionStaysBelowOneOverP) {
  // The theorem's claim, verified numerically over a sweep.
  for (int degree : {0, 1, 2, 3}) {
    for (int p : {2, 4, 8, 16}) {
      for (std::int64_t r : {100, 500, 2000}) {
        const std::int64_t chunk = theorem33_chunk(r, p, degree);
        const double frac = leading_work_fraction(r, chunk, degree);
        // Allow the +1-iteration discretization slack the proof carries.
        const double slack =
            leading_work_fraction(r, 1, degree);  // one iteration's share
        EXPECT_LE(frac, 1.0 / p + slack)
            << "deg=" << degree << " p=" << p << " r=" << r;
      }
    }
  }
}

TEST(LeadingWorkFraction, FullChunkIsEverything) {
  EXPECT_DOUBLE_EQ(leading_work_fraction(100, 100, 2), 1.0);
}

TEST(LeadingWorkFraction, DecreasingWorkloadFrontLoadsWork) {
  // First 10% of a parabolic loop holds well over 10% of the work.
  EXPECT_GT(leading_work_fraction(1000, 100, 2), 0.25);
}

// ---------------------------------------------------------- comparisons --

TEST(SyncComparisons, PaperSection3Ordering) {
  // §3: GSS induces O(P log(N/P)) ops; trapezoid ~4P; for big N:
  // trapezoid < GSS < factoring in totals (Tables 3-5 ordering).
  const std::int64_t n = 5625;
  const int p = 8;
  EXPECT_LT(trapezoid_chunk_count(n, p), gss_sync_count(n, p));
}

TEST(SyncComparisons, TrapezoidNear4P) {
  EXPECT_NEAR(static_cast<double>(trapezoid_chunk_count(100000, 16)), 64.0,
              8.0);
}

}  // namespace
}  // namespace afs
