// Fuzz tests for the last-executed AFS variant: its queue seeding is the
// trickiest bookkeeping in the library (per-worker execution logs, range
// coalescing, fragmentation across epochs), so hammer it with randomized
// participation patterns and verify the coverage invariants every epoch.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "sched/affinity_scheduler.hpp"
#include "sched/range.hpp"
#include "util/rng.hpp"

namespace afs {
namespace {

struct FuzzCase {
  std::int64_t n;
  int p;
  int epochs;
  std::uint64_t seed;
};

class AfsLeFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(AfsLeFuzz, EveryEpochCoversExactlyOnce) {
  const FuzzCase fc = GetParam();
  AffinityOptions o;
  o.seeding = AffinityOptions::Seeding::kLastExecuted;
  AffinityScheduler sched(o);
  Xoshiro256 rng(fc.seed);

  for (int epoch = 0; epoch < fc.epochs; ++epoch) {
    // A random subset of workers participates this epoch (at least one) —
    // models processors held up elsewhere; the active ones must still
    // drain everything via steals.
    std::vector<int> active;
    for (int w = 0; w < fc.p; ++w)
      if (rng.next_bool(0.7)) active.push_back(w);
    if (active.empty()) active.push_back(static_cast<int>(rng.next_in(0, fc.p - 1)));

    sched.start_loop(fc.n, fc.p);
    std::vector<int> owner(static_cast<std::size_t>(fc.n), -1);
    std::vector<bool> done(active.size(), false);
    std::size_t done_count = 0;
    while (done_count < active.size()) {
      const auto idx = static_cast<std::size_t>(
          rng.next_in(0, static_cast<std::int64_t>(active.size()) - 1));
      if (done[idx]) continue;
      const Grab g = sched.next(active[idx]);
      if (g.done()) {
        done[idx] = true;
        ++done_count;
        continue;
      }
      ASSERT_FALSE(g.range.empty());
      for (std::int64_t i = g.range.begin; i < g.range.end; ++i) {
        ASSERT_EQ(owner[static_cast<std::size_t>(i)], -1)
            << "iteration " << i << " granted twice in epoch " << epoch;
        owner[static_cast<std::size_t>(i)] = active[idx];
      }
    }
    for (std::int64_t i = 0; i < fc.n; ++i)
      ASSERT_NE(owner[static_cast<std::size_t>(i)], -1)
          << "iteration " << i << " lost in epoch " << epoch;
    sched.end_loop();
  }
}

TEST_P(AfsLeFuzz, SyncStatsStayConsistent) {
  const FuzzCase fc = GetParam();
  AffinityOptions o;
  o.seeding = AffinityOptions::Seeding::kLastExecuted;
  AffinityScheduler sched(o);
  Xoshiro256 rng(fc.seed ^ 0xabcdef);

  std::int64_t expected_total = 0;
  for (int epoch = 0; epoch < fc.epochs; ++epoch) {
    sched.start_loop(fc.n, fc.p);
    std::vector<bool> done(static_cast<std::size_t>(fc.p), false);
    int done_count = 0;
    while (done_count < fc.p) {
      const int w = static_cast<int>(rng.next_in(0, fc.p - 1));
      if (done[static_cast<std::size_t>(w)]) continue;
      if (sched.next(w).done()) {
        done[static_cast<std::size_t>(w)] = true;
        ++done_count;
      }
    }
    sched.end_loop();
    expected_total += fc.n;
  }
  const QueueStats total = sched.stats().total();
  EXPECT_EQ(total.iters_local + total.iters_remote, expected_total);
  EXPECT_EQ(sched.stats().loops, fc.epochs);
}

std::vector<FuzzCase> fuzz_cases() {
  std::vector<FuzzCase> cases;
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    cases.push_back({97, 5, 6, seed});
    cases.push_back({256, 8, 4, seed * 11});
    cases.push_back({13, 7, 8, seed * 29});   // n close to p: heavy steals
    cases.push_back({3, 6, 5, seed * 41});    // n < p
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Randomized, AfsLeFuzz,
                         ::testing::ValuesIn(fuzz_cases()),
                         [](const ::testing::TestParamInfo<FuzzCase>& param_info) {
                           const FuzzCase& fc = param_info.param;
                           return "n" + std::to_string(fc.n) + "_p" +
                                  std::to_string(fc.p) + "_s" +
                                  std::to_string(fc.seed);
                         });

}  // namespace
}  // namespace afs
