#include "sched/static_scheduler.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "workload/cost_models.hpp"

namespace afs {
namespace {

// ------------------------------------------------------------- STATIC ----

TEST(StaticScheduler, EachWorkerGetsExactlyOneChunk) {
  StaticScheduler s;
  s.start_loop(100, 4);
  for (int w = 0; w < 4; ++w) {
    const Grab g = s.next(w);
    EXPECT_EQ(g.kind, GrabKind::kStatic);
    EXPECT_EQ(g.range.size(), 25);
    EXPECT_TRUE(s.next(w).done()) << "second grab must be done";
  }
}

TEST(StaticScheduler, ChunksPartitionTheLoop) {
  StaticScheduler s;
  s.start_loop(103, 8);
  std::int64_t total = 0;
  for (int w = 0; w < 8; ++w) {
    const Grab g = s.next(w);
    if (!g.done()) total += g.range.size();
  }
  EXPECT_EQ(total, 103);
}

TEST(StaticScheduler, NoSyncOperations) {
  StaticScheduler s;
  s.start_loop(100, 4);
  for (int w = 0; w < 4; ++w) (void)s.next(w);
  EXPECT_EQ(s.stats().total().total_grabs(), 0);
}

TEST(StaticScheduler, ReusableAcrossEpochs) {
  StaticScheduler s;
  for (int e = 0; e < 3; ++e) {
    s.start_loop(40, 4);
    const Grab g = s.next(2);
    EXPECT_EQ(g.range, (IterRange{20, 30}));
    s.end_loop();
  }
  EXPECT_EQ(s.stats().loops, 3);
}

TEST(StaticScheduler, EmptyLoop) {
  StaticScheduler s;
  s.start_loop(0, 4);
  for (int w = 0; w < 4; ++w) EXPECT_TRUE(s.next(w).done());
}

// ------------------------------------------- balanced partition oracle ---

TEST(BalancedPartition, UniformCostsSplitEvenly) {
  const auto blocks = balanced_contiguous_partition(100, 4, uniform_cost(1.0));
  ASSERT_EQ(blocks.size(), 4u);
  for (const auto& b : blocks) EXPECT_EQ(b.size(), 25);
}

TEST(BalancedPartition, CoversContiguously) {
  for (std::int64_t n : {1, 10, 97, 1000}) {
    for (int p : {1, 3, 8}) {
      const auto blocks =
          balanced_contiguous_partition(n, p, triangular_cost(n));
      std::int64_t prev = 0;
      for (const auto& b : blocks) {
        EXPECT_EQ(b.begin, prev);
        prev = b.end;
      }
      EXPECT_EQ(prev, n);
    }
  }
}

TEST(BalancedPartition, TriangularCostsGiveUnevenSizes) {
  // cost(i) = n - i: early blocks should be shorter than late blocks.
  const auto blocks =
      balanced_contiguous_partition(1000, 4, triangular_cost(1000));
  EXPECT_LT(blocks.front().size(), blocks.back().size());
}

TEST(BalancedPartition, MakespanNearOptimal) {
  const std::int64_t n = 1000;
  const int p = 7;
  const auto cost = parabolic_cost(n);
  const auto blocks = balanced_contiguous_partition(n, p, cost);
  double max_block = 0.0, total = 0.0;
  for (const auto& b : blocks) {
    double c = 0.0;
    for (std::int64_t i = b.begin; i < b.end; ++i) c += cost(i);
    max_block = std::max(max_block, c);
    total += c;
  }
  // Within max single-iteration cost of the lower bound total/p.
  EXPECT_LE(max_block, total / p + max_cost(cost, n) + 1e-6);
}

TEST(BalancedPartition, HeadHeavySplitsTheHeavyRegion) {
  // All work in the first 10%: the first blocks must subdivide it.
  const auto blocks = balanced_contiguous_partition(
      1000, 4, head_heavy_cost(1000, 0.1, 100.0, 0.0));
  EXPECT_LE(blocks[0].end, 100);
  EXPECT_LE(blocks[1].end, 101);
}

TEST(BalancedPartition, ZeroIterations) {
  const auto blocks = balanced_contiguous_partition(0, 3, uniform_cost());
  ASSERT_EQ(blocks.size(), 3u);
  for (const auto& b : blocks) EXPECT_TRUE(b.empty());
}

// -------------------------------------------------------- BEST-STATIC ----

TEST(BestStatic, UniformOracleMatchesStatic) {
  BestStaticScheduler s{IterationCostFn{}};
  s.start_loop(100, 4);
  const Grab g = s.next(1);
  EXPECT_EQ(g.range.size(), 25);
  EXPECT_EQ(g.kind, GrabKind::kStatic);
}

TEST(BestStatic, OracleBalancesTriangularLoad) {
  BestStaticScheduler s{triangular_cost(1000)};
  s.start_loop(1000, 4);
  std::vector<double> load(4, 0.0);
  const auto cost = triangular_cost(1000);
  for (int w = 0; w < 4; ++w) {
    const Grab g = s.next(w);
    for (std::int64_t i = g.range.begin; i < g.range.end; ++i)
      load[w] += cost(i);
  }
  const double avg = (load[0] + load[1] + load[2] + load[3]) / 4.0;
  for (double l : load) EXPECT_NEAR(l, avg, 0.01 * avg + 1000.0);
}

TEST(BestStatic, EpochProviderFollowsShape) {
  int calls = 0;
  BestStaticScheduler s{EpochCostProvider([&calls](int ordinal) {
    ++calls;
    return uniform_cost(static_cast<double>(ordinal + 1));
  })};
  s.start_loop(10, 2);
  s.end_loop();
  s.start_loop(10, 2);
  s.end_loop();
  EXPECT_EQ(calls, 2);
}

TEST(BestStatic, PartitionExposedForInspection) {
  BestStaticScheduler s{uniform_cost(1.0)};
  s.start_loop(100, 4);
  EXPECT_EQ(s.partition().size(), 4u);
}

TEST(BestStatic, CloneKeepsOracle) {
  BestStaticScheduler s{triangular_cost(100)};
  auto c = s.clone();
  c->start_loop(100, 2);
  const Grab g = c->next(0);
  // Triangular: the first block carries the heavy head, so it is shorter
  // than half the loop.
  EXPECT_LT(g.range.size(), 50);
}

}  // namespace
}  // namespace afs
