// Property tests shared by ALL schedulers: driven both single-threaded
// (with randomized worker interleavings) and multi-threaded, every
// scheduler must hand out each iteration of [0, n) exactly once, never
// return an empty non-done grab, and terminate.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <tuple>
#include <vector>

#include "runtime/parallel_for.hpp"
#include "runtime/thread_pool.hpp"
#include "sched/registry.hpp"
#include "util/rng.hpp"

namespace afs {
namespace {

using Param = std::tuple<std::string, std::int64_t, int>;  // spec, n, p

class SchedulerCoverage : public ::testing::TestWithParam<Param> {};

TEST_P(SchedulerCoverage, RandomInterleavingCoversExactlyOnce) {
  const auto& [spec, n, p] = GetParam();
  auto sched = make_scheduler(spec);
  Xoshiro256 rng(0x9e3779b9);

  for (int epoch = 0; epoch < 3; ++epoch) {  // re-use across epochs too
    sched->start_loop(n, p);
    std::vector<int> owner(static_cast<std::size_t>(n), -1);
    std::vector<bool> done(static_cast<std::size_t>(p), false);
    int done_count = 0;
    while (done_count < p) {
      const int w = static_cast<int>(rng.next_in(0, p - 1));
      if (done[static_cast<std::size_t>(w)]) continue;
      const Grab g = sched->next(w);
      if (g.done()) {
        done[static_cast<std::size_t>(w)] = true;
        ++done_count;
        continue;
      }
      ASSERT_FALSE(g.range.empty()) << spec << " returned an empty grab";
      ASSERT_GE(g.range.begin, 0);
      ASSERT_LE(g.range.end, n);
      for (std::int64_t i = g.range.begin; i < g.range.end; ++i) {
        ASSERT_EQ(owner[static_cast<std::size_t>(i)], -1)
            << spec << ": iteration " << i << " granted twice (epoch "
            << epoch << ")";
        owner[static_cast<std::size_t>(i)] = w;
      }
    }
    for (std::int64_t i = 0; i < n; ++i)
      ASSERT_NE(owner[static_cast<std::size_t>(i)], -1)
          << spec << ": iteration " << i << " never granted";
    sched->end_loop();
  }
}

TEST_P(SchedulerCoverage, MultiThreadedCoversExactlyOnce) {
  const auto& [spec, n, p] = GetParam();
  auto sched = make_scheduler(spec);
  ThreadPool pool(p);
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  for (auto& h : hits) h.store(0);

  parallel_for(pool, *sched, n, [&hits](IterRange r, int) {
    for (std::int64_t i = r.begin; i < r.end; ++i)
      hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });

  for (std::int64_t i = 0; i < n; ++i)
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
        << spec << ": iteration " << i;
}

std::vector<Param> coverage_params() {
  const std::vector<std::string> specs = {
      "SS",      "CHUNK(7)",    "GSS",       "GSS(2)",        "FACTORING",
      "TRAPEZOID", "TAPER(1.0)", "STATIC",    "BEST-STATIC",   "MOD-FACTORING",
      "AFS",     "AFS(k=2)",    "AFS-LE",    "AFS(steal=2)",  "REV:GSS",
      "REV:TRAPEZOID"};
  const std::vector<std::pair<std::int64_t, int>> shapes = {
      {0, 4}, {1, 4}, {3, 8}, {64, 8}, {100, 3}, {513, 7}};
  std::vector<Param> params;
  for (const auto& s : specs)
    for (const auto& [n, p] : shapes) params.emplace_back(s, n, p);
  return params;
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  const auto& [spec, n, p] = info.param;
  std::string s = spec + "_n" + std::to_string(n) + "_p" + std::to_string(p);
  for (char& c : s)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return s;
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, SchedulerCoverage,
                         ::testing::ValuesIn(coverage_params()), param_name);

}  // namespace
}  // namespace afs
