#include "sched/affinity_scheduler.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sched/bounds.hpp"
#include "sched/range.hpp"

namespace afs {
namespace {

// ------------------------------------------------- initial partition ----

TEST(AffinityInitialChunk, PaperPartitionFormula) {
  // Processor i gets [ceil(i*N/P), min(N, ceil((i+1)*N/P))).
  EXPECT_EQ(affinity_initial_chunk(100, 4, 0), (IterRange{0, 25}));
  EXPECT_EQ(affinity_initial_chunk(100, 4, 3), (IterRange{75, 100}));
  EXPECT_EQ(affinity_initial_chunk(10, 3, 0), (IterRange{0, 4}));
  EXPECT_EQ(affinity_initial_chunk(10, 3, 1), (IterRange{4, 7}));
  EXPECT_EQ(affinity_initial_chunk(10, 3, 2), (IterRange{7, 10}));
}

TEST(AffinityInitialChunk, PartitionCoversAndIsDisjoint) {
  for (std::int64_t n : {0, 1, 7, 100, 513}) {
    for (int p : {1, 2, 3, 8, 17}) {
      std::int64_t prev_end = 0;
      for (int i = 0; i < p; ++i) {
        const IterRange r = affinity_initial_chunk(n, p, i);
        EXPECT_EQ(r.begin, prev_end) << n << "/" << p << "/" << i;
        prev_end = r.end;
      }
      EXPECT_EQ(prev_end, n);
    }
  }
}

TEST(AffinityInitialChunk, FewerIterationsThanProcessors) {
  // n=2, p=4: two processors get one iteration, two get none.
  int nonempty = 0;
  for (int i = 0; i < 4; ++i)
    if (!affinity_initial_chunk(2, 4, i).empty()) ++nonempty;
  EXPECT_EQ(nonempty, 2);
}

// -------------------------------------------------------- owner grabs ----

TEST(AffinityScheduler, OwnerTakesOneOverKOfLocalQueue) {
  // N=64, P=8 => 8 iterations per queue; k=P=8: grabs of 1/8 of remaining.
  AffinityScheduler s;
  s.start_loop(64, 8);
  const Grab g1 = s.next(0);
  EXPECT_EQ(g1.kind, GrabKind::kLocal);
  EXPECT_EQ(g1.queue, 0);
  EXPECT_EQ(g1.range, (IterRange{0, 1}));  // ceil(8/8) = 1
}

TEST(AffinityScheduler, ExplicitKTwoTakesHalf) {
  AffinityOptions o;
  o.k = 2;
  AffinityScheduler s(o);
  s.start_loop(64, 8);
  EXPECT_EQ(s.next(0).range, (IterRange{0, 4}));  // ceil(8/2)
  EXPECT_EQ(s.next(0).range, (IterRange{4, 6}));  // ceil(4/2)
  EXPECT_EQ(s.next(0).range, (IterRange{6, 7}));
  EXPECT_EQ(s.next(0).range, (IterRange{7, 8}));
}

TEST(AffinityScheduler, OwnerDrainSequenceMatchesDrainCount) {
  AffinityOptions o;
  o.k = 4;
  AffinityScheduler s(o);
  s.start_loop(400, 4);  // 100 per queue
  int grabs = 0;
  for (;;) {
    const Grab g = s.next(2);
    if (g.done() || g.kind != GrabKind::kLocal) break;
    ++grabs;
    if (g.queue != 2) break;
    if (s.stats().queues[2].iters_local == 100) break;
  }
  EXPECT_EQ(grabs, drain_count(100, 4));
}

// ------------------------------------------------------------- steals ----

TEST(AffinityScheduler, IdleProcessorStealsFromMostLoaded) {
  AffinityScheduler s;
  s.start_loop(40, 4);  // queues of 10 each
  // Drain queue 0 completely via worker 0's local grabs.
  Grab g = s.next(0);
  while (!g.done() && g.kind == GrabKind::kLocal && g.queue == 0) g = s.next(0);
  // That last grab is a steal from some other queue (all equally loaded:
  // lowest id wins the tie -> queue 1), taking ceil(size/P) from the back.
  EXPECT_EQ(g.kind, GrabKind::kRemote);
  EXPECT_EQ(g.queue, 1);
  EXPECT_EQ(g.range.size(), ceil_div(10, 4));
  EXPECT_EQ(g.range.end, 20);  // stolen from the back of queue 1's [10,20)
}

TEST(AffinityScheduler, StealTakesFractionOfVictim) {
  AffinityOptions o;
  o.steal_denom = 2;  // steal half
  AffinityScheduler s(o);
  s.start_loop(40, 4);
  Grab g = s.next(0);
  while (!g.done() && g.kind == GrabKind::kLocal) g = s.next(0);
  EXPECT_EQ(g.kind, GrabKind::kRemote);
  EXPECT_EQ(g.range.size(), 5);  // half of victim's 10
}

TEST(AffinityScheduler, SingleWorkerDrainsEverything) {
  AffinityScheduler s;
  s.start_loop(100, 4);
  std::int64_t seen = 0;
  for (;;) {
    const Grab g = s.next(1);
    if (g.done()) break;
    seen += g.range.size();
  }
  EXPECT_EQ(seen, 100);
  EXPECT_TRUE(s.next(1).done());  // stays done
}

TEST(AffinityScheduler, StatsSeparateLocalAndRemote) {
  AffinityScheduler s;
  s.start_loop(100, 4);
  while (!s.next(0).done()) {
  }
  const SyncStats stats = s.stats();
  std::int64_t local = 0, remote = 0, il = 0, ir = 0;
  for (const auto& q : stats.queues) {
    local += q.local_grabs;
    remote += q.remote_grabs;
    il += q.iters_local;
    ir += q.iters_remote;
  }
  EXPECT_GT(local, 0);
  EXPECT_GT(remote, 0);       // worker 0 stole from queues 1..3
  EXPECT_EQ(il + ir, 100);    // every iteration taken exactly once
  EXPECT_EQ(stats.queues.size(), 4u);
}

// -------------------------------------------------------- determinism ----

TEST(AffinityScheduler, DeterministicSeedingEveryEpoch) {
  AffinityScheduler s;
  for (int epoch = 0; epoch < 3; ++epoch) {
    s.start_loop(64, 8);
    const Grab g = s.next(5);
    EXPECT_EQ(g.range.begin, affinity_initial_chunk(64, 8, 5).begin);
    // Drain to finish the epoch cleanly.
    while (!s.next(5).done()) {
    }
    s.end_loop();
  }
}

TEST(AffinityScheduler, NameEncodesOptions) {
  EXPECT_EQ(AffinityScheduler().name(), "AFS");
  AffinityOptions o;
  o.k = 2;
  EXPECT_EQ(AffinityScheduler(o).name(), "AFS(k=2)");
  AffinityOptions le;
  le.seeding = AffinityOptions::Seeding::kLastExecuted;
  EXPECT_EQ(AffinityScheduler(le).name(), "AFS-LE");
}

// ---------------------------------------------------- last-executed ------

TEST(AffinityScheduler, LastExecutedSeedsNextEpochWithExecutedSet) {
  AffinityOptions o;
  o.seeding = AffinityOptions::Seeding::kLastExecuted;
  AffinityScheduler s(o);

  // Epoch 1: worker 3 executes everything (workers 0-2 never ask).
  s.start_loop(40, 4);
  std::int64_t total = 0;
  for (;;) {
    const Grab g = s.next(3);
    if (g.done()) break;
    total += g.range.size();
  }
  EXPECT_EQ(total, 40);
  s.end_loop();

  // Epoch 2: queue 3 should hold all 40 iterations.
  s.start_loop(40, 4);
  std::int64_t q3 = 0;
  for (;;) {
    const Grab g = s.next(3);
    if (g.done() || g.kind != GrabKind::kLocal) break;
    q3 += g.range.size();
  }
  EXPECT_EQ(q3, 40);
  s.end_loop();
}

TEST(AffinityScheduler, LastExecutedFallsBackOnShapeChange) {
  AffinityOptions o;
  o.seeding = AffinityOptions::Seeding::kLastExecuted;
  AffinityScheduler s(o);
  s.start_loop(40, 4);
  while (!s.next(0).done()) {
  }
  s.end_loop();
  // Different n: deterministic seeding must be used.
  s.start_loop(32, 4);
  const Grab g = s.next(2);
  EXPECT_EQ(g.range.begin, affinity_initial_chunk(32, 4, 2).begin);
}

// -------------------------------------------------------- edge cases -----

TEST(AffinityScheduler, EmptyLoop) {
  AffinityScheduler s;
  s.start_loop(0, 4);
  for (int w = 0; w < 4; ++w) EXPECT_TRUE(s.next(w).done());
}

TEST(AffinityScheduler, NEqualsOne) {
  AffinityScheduler s;
  s.start_loop(1, 8);
  std::int64_t got = 0;
  for (int w = 0; w < 8; ++w) {
    const Grab g = s.next(w);
    if (!g.done()) got += g.range.size();
  }
  EXPECT_EQ(got, 1);
}

TEST(AffinityScheduler, ChangingPRebuildsQueues) {
  AffinityScheduler s;
  s.start_loop(100, 4);
  while (!s.next(0).done()) {
  }
  s.start_loop(100, 8);
  const Grab g = s.next(7);
  EXPECT_EQ(g.range.begin, affinity_initial_chunk(100, 8, 7).begin);
}

}  // namespace
}  // namespace afs
