#include "sched/mod_factoring_scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sched/range.hpp"

namespace afs {
namespace {

TEST(ModFactoring, ReservedChunkGoesToOwner) {
  ModFactoringScheduler s;
  s.start_loop(1000, 4);
  // Phase chunks of ceil(1000/(2*4)) = 125: slot i = [125i, 125(i+1)).
  for (int w = 3; w >= 0; --w) {  // order must not matter
    const Grab g = s.next(w);
    EXPECT_EQ(g.range, (IterRange{125 * w, 125 * (w + 1)})) << "worker " << w;
    EXPECT_EQ(g.kind, GrabKind::kCentral);
  }
  EXPECT_EQ(s.affine_grabs(), 4);
  EXPECT_EQ(s.fallback_grabs(), 0);
}

TEST(ModFactoring, FallbackWhenOwnSlotTaken) {
  ModFactoringScheduler s;
  s.start_loop(1000, 4);
  (void)s.next(0);  // own slot 0
  (void)s.next(0);  // 0's slot gone: takes first unclaimed = slot 1
  const Grab g = s.next(1);  // 1's slot gone too: takes slot 2
  EXPECT_EQ(g.range, (IterRange{250, 375}));
  EXPECT_EQ(s.fallback_grabs(), 2);
}

TEST(ModFactoring, PhasesMatchFactoringSizes) {
  ModFactoringScheduler s;
  s.start_loop(1000, 4);
  std::vector<std::int64_t> sizes;
  while (true) {
    const Grab g = s.next(0);
    if (g.done()) break;
    sizes.push_back(g.range.size());
  }
  // Same sizes as plain factoring (see chunk_policy_test).
  const std::vector<std::int64_t> expect{125, 125, 125, 125, 63, 63, 63, 63,
                                         31,  31,  31,  31,  16, 16, 16, 16,
                                         8,   8,   8,   8,   4,  4,  4,  4,
                                         2,   2,   2,   2,   1,  1,  1,  1};
  EXPECT_EQ(sizes, expect);
}

TEST(ModFactoring, CoversEveryIteration) {
  for (std::int64_t n : {1, 7, 100, 999}) {
    for (int p : {1, 3, 8}) {
      ModFactoringScheduler s;
      s.start_loop(n, p);
      std::vector<bool> seen(static_cast<std::size_t>(n), false);
      for (int w = 0;; w = (w + 1) % p) {
        const Grab g = s.next(w);
        if (g.done()) break;
        for (std::int64_t i = g.range.begin; i < g.range.end; ++i) {
          EXPECT_FALSE(seen[static_cast<std::size_t>(i)]);
          seen[static_cast<std::size_t>(i)] = true;
        }
      }
      for (bool b : seen) EXPECT_TRUE(b);
    }
  }
}

TEST(ModFactoring, IsIndexedCentralQueue) {
  EXPECT_TRUE(ModFactoringScheduler().central_queue_is_indexed());
}

TEST(ModFactoring, EmptyLoop) {
  ModFactoringScheduler s;
  s.start_loop(0, 4);
  EXPECT_TRUE(s.next(0).done());
}

TEST(ModFactoring, SmallLoopManyProcessors) {
  // n < P: only some slots are non-empty in phase 1.
  ModFactoringScheduler s;
  s.start_loop(3, 8);
  std::int64_t total = 0;
  for (int w = 0; w < 8; ++w) {
    const Grab g = s.next(w);
    if (!g.done()) total += g.range.size();
  }
  EXPECT_EQ(total, 3);
}

TEST(ModFactoring, StatsCountCentralGrabs) {
  ModFactoringScheduler s;
  s.start_loop(1000, 4);
  while (!s.next(0).done()) {
  }
  EXPECT_EQ(s.stats().total().total_grabs(), 32);  // factoring's grab count
  EXPECT_EQ(s.stats().total().iters_local, 1000);
}

TEST(ModFactoring, AffinityRetainedAcrossEpochsForSameWorker) {
  // Deterministic slot mapping: worker 2's first grab is identical every
  // epoch, which is what preserves cache affinity.
  ModFactoringScheduler s;
  IterRange first_epoch{};
  for (int e = 0; e < 3; ++e) {
    s.start_loop(1000, 4);
    const Grab g = s.next(2);
    if (e == 0)
      first_epoch = g.range;
    else
      EXPECT_EQ(g.range, first_epoch);
    while (!s.next(2).done()) {
    }
    s.end_loop();
  }
}

}  // namespace
}  // namespace afs
