#include "sched/chunk_policy.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sched/range.hpp"
#include "util/check.hpp"

namespace afs {
namespace {

// Drains a policy, returning the full chunk sequence.
std::vector<std::int64_t> sequence(ChunkPolicy& policy, std::int64_t n, int p) {
  policy.reset(n, p);
  std::vector<std::int64_t> out;
  std::int64_t remaining = n;
  while (remaining > 0) {
    const std::int64_t c = policy.next_chunk(remaining);
    out.push_back(c);
    remaining -= c;
  }
  return out;
}

std::int64_t total(const std::vector<std::int64_t>& seq) {
  std::int64_t t = 0;
  for (auto c : seq) t += c;
  return t;
}

// ------------------------------------------------------------------- SS --

TEST(SelfSched, AlwaysOne) {
  auto p = make_self_sched();
  const auto seq = sequence(*p, 17, 4);
  EXPECT_EQ(seq.size(), 17u);
  for (auto c : seq) EXPECT_EQ(c, 1);
}

// ---------------------------------------------------------------- CHUNK --

TEST(FixedChunk, ExactDivision) {
  auto p = make_fixed_chunk(5);
  const auto seq = sequence(*p, 20, 3);
  EXPECT_EQ(seq, (std::vector<std::int64_t>{5, 5, 5, 5}));
}

TEST(FixedChunk, LastChunkClipped) {
  auto p = make_fixed_chunk(8);
  const auto seq = sequence(*p, 20, 3);
  EXPECT_EQ(seq, (std::vector<std::int64_t>{8, 8, 4}));
}

TEST(FixedChunk, RejectsNonPositiveK) {
  EXPECT_THROW(make_fixed_chunk(0), CheckFailure);
}

// ------------------------------------------------------------------ GSS --

TEST(Gss, ClassicSequenceN100P4) {
  // ceil(R/4): 25,19,14,11,8,6,5,3,3,2,1,1,1,1 — hand-computed.
  auto p = make_gss();
  const auto seq = sequence(*p, 100, 4);
  EXPECT_EQ(seq, (std::vector<std::int64_t>{25, 19, 14, 11, 8, 6, 5, 3, 3, 2,
                                            1, 1, 1, 1}));
}

TEST(Gss, FirstChunkIsNOverP) {
  auto p = make_gss();
  p->reset(1000, 8);
  EXPECT_EQ(p->next_chunk(1000), 125);
}

TEST(Gss, KFactorShrinksChunks) {
  auto p = make_gss(2);
  p->reset(1000, 8);
  EXPECT_EQ(p->next_chunk(1000), 63);  // ceil(1000/16)
}

TEST(Gss, SingleProcessorTakesEverythingFirst) {
  auto p = make_gss();
  p->reset(50, 1);
  EXPECT_EQ(p->next_chunk(50), 50);
}

TEST(Gss, CoversExactlyN) {
  auto p = make_gss();
  for (std::int64_t n : {1, 2, 7, 100, 12345}) {
    for (int procs : {1, 2, 5, 16}) {
      EXPECT_EQ(total(sequence(*p, n, procs)), n) << n << "/" << procs;
    }
  }
}

// ------------------------------------------------------------ FACTORING --

TEST(Factoring, ClassicSequenceN1000P4) {
  // Phases of 4 chunks: ceil(alpha*R/P) with alpha=1/2:
  // 125x4 (R 1000->500), 63x4 (->248), 31x4 (->124), 16x4 (->60),
  // 8x4 (->28), 4x4 (->12), 2x4 (->4), 1x4 (->0).
  auto p = make_factoring();
  const auto seq = sequence(*p, 1000, 4);
  const std::vector<std::int64_t> expect{125, 125, 125, 125, 63, 63, 63, 63,
                                         31,  31,  31,  31,  16, 16, 16, 16,
                                         8,   8,   8,   8,   4,  4,  4,  4,
                                         2,   2,   2,   2,   1,  1,  1,  1};
  EXPECT_EQ(seq, expect);
}

TEST(Factoring, FirstChunkIsHalfOfGss) {
  auto f = make_factoring();
  auto g = make_gss();
  f->reset(1000, 8);
  g->reset(1000, 8);
  EXPECT_EQ(f->next_chunk(1000), (g->next_chunk(1000) + 1) / 2);
}

TEST(Factoring, AlphaOneBehavesLikeGssPhases) {
  auto p = make_factoring(1.0);
  p->reset(100, 4);
  EXPECT_EQ(p->next_chunk(100), 25);
}

TEST(Factoring, RejectsBadAlpha) {
  EXPECT_THROW(make_factoring(0.0), CheckFailure);
  EXPECT_THROW(make_factoring(1.5), CheckFailure);
}

TEST(Factoring, CoversExactlyN) {
  auto p = make_factoring();
  for (std::int64_t n : {1, 3, 100, 999, 5625}) {
    for (int procs : {1, 4, 8, 60}) {
      EXPECT_EQ(total(sequence(*p, n, procs)), n) << n << "/" << procs;
    }
  }
}

// ------------------------------------------------------------ TRAPEZOID --

TEST(Trapezoid, FirstChunkIsNOver2P) {
  auto p = make_trapezoid();
  p->reset(1000, 4);
  EXPECT_EQ(p->next_chunk(1000), 125);
}

TEST(Trapezoid, ChunksDecreaseLinearly) {
  auto p = make_trapezoid();
  const auto seq = sequence(*p, 1000, 4);
  EXPECT_EQ(seq.front(), 125);
  for (std::size_t i = 1; i < seq.size(); ++i)
    EXPECT_LE(seq[i], seq[i - 1]) << "at " << i;
  // Consecutive differences are near-constant (rounding allows +-1).
  const auto delta0 = seq[0] - seq[1];
  for (std::size_t i = 1; i + 2 < seq.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(seq[i] - seq[i + 1]),
                static_cast<double>(delta0), 1.0);
  }
}

TEST(Trapezoid, ChunkCountNear4P) {
  // Tzen & Ni: n_c = ceil(2N/(f+l)) ~ 4P for f = N/2P, l = 1.
  auto p = make_trapezoid();
  const auto seq = sequence(*p, 10000, 8);
  EXPECT_NEAR(static_cast<double>(seq.size()), 4.0 * 8, 4.0);
}

TEST(Trapezoid, ExplicitFirstLast) {
  auto p = make_trapezoid(10, 2);
  p->reset(100, 4);
  EXPECT_EQ(p->next_chunk(100), 10);
}

TEST(Trapezoid, CoversExactlyN) {
  auto p = make_trapezoid();
  for (std::int64_t n : {1, 5, 512, 5000, 50000}) {
    for (int procs : {1, 2, 8, 56}) {
      EXPECT_EQ(total(sequence(*p, n, procs)), n) << n << "/" << procs;
    }
  }
}

// ---------------------------------------------------------------- TAPER --

TEST(Taper, ZeroCvIsGss) {
  auto t = make_taper(0.0);
  auto g = make_gss();
  t->reset(1000, 4);
  g->reset(1000, 4);
  std::int64_t r = 1000;
  while (r > 0) {
    const auto ct = t->next_chunk(r);
    EXPECT_EQ(ct, g->next_chunk(r));
    r -= ct;
  }
}

TEST(Taper, HighVarianceShrinksChunks) {
  auto t = make_taper(2.0);
  t->reset(1000, 4);
  EXPECT_EQ(t->next_chunk(1000), 84);  // ceil(1000/(3*4))
}

// ------------------------------------------------------------ universal --

TEST(AllPolicies, CloneIsIndependent) {
  // A clone must behave exactly like a fresh policy with the same
  // configuration, regardless of the original's state.
  for (auto make : {+[] { return make_gss(); }, +[] { return make_factoring(); },
                    +[] { return make_trapezoid(); }}) {
    auto original = make();
    original->reset(977, 3);
    (void)original->next_chunk(977);  // disturb the original's state
    auto clone = original->clone();
    auto fresh = make();
    const auto got = sequence(*clone, 200, 2);
    const auto expect = sequence(*fresh, 200, 2);
    EXPECT_EQ(got, expect) << original->name();
    // And cloning did not disturb the original either.
    EXPECT_EQ(sequence(*original, 977, 3), sequence(*fresh, 977, 3));
  }
}

TEST(AllPolicies, ResetRestartsState) {
  auto p = make_factoring();
  sequence(*p, 1000, 4);
  const auto again = sequence(*p, 1000, 4);
  EXPECT_EQ(again.front(), 125);  // phase state was reset
}

TEST(AllPolicies, NamesAreStable) {
  EXPECT_EQ(make_self_sched()->name(), "SS");
  EXPECT_EQ(make_fixed_chunk(8)->name(), "CHUNK(8)");
  EXPECT_EQ(make_gss()->name(), "GSS");
  EXPECT_EQ(make_gss(2)->name(), "GSS(2)");
  EXPECT_EQ(make_factoring()->name(), "FACTORING");
  EXPECT_EQ(make_trapezoid()->name(), "TRAPEZOID");
}

}  // namespace
}  // namespace afs
