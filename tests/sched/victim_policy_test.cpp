// The randomized victim-selection variant (AFS-RAND) and the
// work-stealing baseline (WS): coverage, naming, probe-cost reporting, and
// the termination guarantee that random probing falls back to a full scan.
#include <gtest/gtest.h>

#include "sched/affinity_scheduler.hpp"
#include "sched/registry.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace afs {
namespace {

TEST(VictimPolicy, NamesEncodeVariant) {
  EXPECT_EQ(make_scheduler("AFS-RAND")->name(), "AFS-RAND(2)");
  EXPECT_EQ(make_scheduler("AFS-RAND(4)")->name(), "AFS-RAND(4)");
  EXPECT_EQ(make_scheduler("WS")->name(), "AFS(k=2)(steal=1/2)-RAND(2)");
}

TEST(VictimPolicy, ProbeCountReportedToSimulator) {
  EXPECT_EQ(make_scheduler("AFS")->victim_probe_count(57), 57);
  EXPECT_EQ(make_scheduler("AFS-RAND(3)")->victim_probe_count(57), 3);
  EXPECT_EQ(make_scheduler("GSS")->victim_probe_count(8), 8);  // default
}

TEST(VictimPolicy, RandomProbeStillCoversEverything) {
  for (const char* spec : {"AFS-RAND", "AFS-RAND(1)", "WS"}) {
    auto sched = make_scheduler(spec);
    Xoshiro256 rng(5);
    for (int epoch = 0; epoch < 2; ++epoch) {
      sched->start_loop(257, 7);
      std::vector<int> seen(257, 0);
      std::vector<bool> done(7, false);
      int done_count = 0;
      while (done_count < 7) {
        const int w = static_cast<int>(rng.next_in(0, 6));
        if (done[static_cast<std::size_t>(w)]) continue;
        const Grab g = sched->next(w);
        if (g.done()) {
          done[static_cast<std::size_t>(w)] = true;
          ++done_count;
          continue;
        }
        for (std::int64_t i = g.range.begin; i < g.range.end; ++i)
          ++seen[static_cast<std::size_t>(i)];
      }
      for (int count : seen) ASSERT_EQ(count, 1) << spec;
      sched->end_loop();
    }
  }
}

TEST(VictimPolicy, SingleWorkerDrainsViaFallbackScan) {
  // With probe_count = 1 and an unlucky stream, the sample may keep
  // missing the one loaded queue; the full-scan fallback guarantees the
  // worker still finds it instead of spuriously reporting "done".
  AffinityOptions o;
  o.victim = AffinityOptions::Victim::kRandomProbe;
  o.probe_count = 1;
  AffinityScheduler sched(o);
  sched.start_loop(64, 8);
  std::int64_t total = 0;
  for (;;) {
    const Grab g = sched.next(3);
    if (g.done()) break;
    total += g.range.size();
  }
  EXPECT_EQ(total, 64);
}

TEST(VictimPolicy, DeterministicInProbeSeed) {
  auto run = [](std::uint64_t seed) {
    AffinityOptions o;
    o.victim = AffinityOptions::Victim::kRandomProbe;
    o.probe_seed = seed;
    AffinityScheduler sched(o);
    sched.start_loop(128, 4);
    // Worker 0 drains everything; record the victim sequence.
    std::vector<int> victims;
    for (;;) {
      const Grab g = sched.next(0);
      if (g.done()) break;
      if (g.kind == GrabKind::kRemote) victims.push_back(g.queue);
    }
    return victims;
  };
  EXPECT_EQ(run(1), run(1));
}

TEST(VictimPolicy, RejectsNonPositiveProbeCount) {
  AffinityOptions o;
  o.victim = AffinityOptions::Victim::kRandomProbe;
  o.probe_count = 0;
  EXPECT_THROW(AffinityScheduler{o}, CheckFailure);
}

}  // namespace
}  // namespace afs
