#include "sched/reverse_scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sched/central_scheduler.hpp"
#include "sched/chunk_policy.hpp"
#include "sched/mod_factoring_scheduler.hpp"
#include "sched/registry.hpp"

namespace afs {
namespace {

TEST(ReverseScheduler, FirstGrabCoversTheTail) {
  ReverseScheduler s(std::make_unique<CentralScheduler>(make_gss()));
  s.start_loop(100, 4);
  const Grab g = s.next(0);
  // GSS virtual chunk [0,25) maps to real [75,100).
  EXPECT_EQ(g.range, (IterRange{75, 100}));
}

TEST(ReverseScheduler, CoversEveryIterationExactlyOnce) {
  ReverseScheduler s(std::make_unique<CentralScheduler>(make_factoring()));
  s.start_loop(321, 5);
  std::vector<bool> seen(321, false);
  for (;;) {
    const Grab g = s.next(0);
    if (g.done()) break;
    for (std::int64_t i = g.range.begin; i < g.range.end; ++i) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(i)]);
      seen[static_cast<std::size_t>(i)] = true;
    }
  }
  for (bool b : seen) EXPECT_TRUE(b);
}

TEST(ReverseScheduler, RangesDescendOverTime) {
  ReverseScheduler s(std::make_unique<CentralScheduler>(make_gss()));
  s.start_loop(1000, 4);
  std::int64_t prev_begin = 1000;
  for (;;) {
    const Grab g = s.next(0);
    if (g.done()) break;
    EXPECT_EQ(g.range.end, prev_begin);  // contiguous, descending
    prev_begin = g.range.begin;
  }
  EXPECT_EQ(prev_begin, 0);
}

TEST(ReverseScheduler, NamePrefixed) {
  ReverseScheduler s(std::make_unique<CentralScheduler>(make_gss()));
  EXPECT_EQ(s.name(), "REV:GSS");
}

TEST(ReverseScheduler, ForwardsStats) {
  ReverseScheduler s(std::make_unique<CentralScheduler>(make_self_sched()));
  s.start_loop(10, 2);
  while (!s.next(0).done()) {
  }
  EXPECT_EQ(s.stats().total().total_grabs(), 10);
  s.reset_stats();
  EXPECT_EQ(s.stats().total().total_grabs(), 0);
}

TEST(ReverseScheduler, ForwardsIndexedFlag) {
  ReverseScheduler plain(std::make_unique<CentralScheduler>(make_gss()));
  EXPECT_FALSE(plain.central_queue_is_indexed());
  ReverseScheduler mf(std::make_unique<ModFactoringScheduler>());
  EXPECT_TRUE(mf.central_queue_is_indexed());
}

TEST(ReverseScheduler, RegistrySpec) {
  auto s = make_scheduler("REV:GSS");
  EXPECT_EQ(s->name(), "REV:GSS");
  s->start_loop(100, 4);
  EXPECT_EQ(s->next(0).range, (IterRange{75, 100}));
}

TEST(ReverseScheduler, CloneIsDeep) {
  ReverseScheduler s(std::make_unique<CentralScheduler>(make_gss()));
  s.start_loop(100, 4);
  (void)s.next(0);
  auto c = s.clone();
  c->start_loop(100, 4);
  EXPECT_EQ(c->next(0).range, (IterRange{75, 100}));
}

}  // namespace
}  // namespace afs
