#include "sched/central_scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sched/chunk_policy.hpp"
#include "util/check.hpp"

namespace afs {
namespace {

TEST(CentralScheduler, GrabsAreContiguousAscending) {
  CentralScheduler s(make_gss());
  s.start_loop(100, 4);
  std::int64_t expect_begin = 0;
  for (;;) {
    const Grab g = s.next(0);
    if (g.done()) break;
    EXPECT_EQ(g.range.begin, expect_begin);
    EXPECT_EQ(g.kind, GrabKind::kCentral);
    EXPECT_EQ(g.queue, 0);
    expect_begin = g.range.end;
  }
  EXPECT_EQ(expect_begin, 100);
}

TEST(CentralScheduler, EmptyLoopImmediatelyDone) {
  CentralScheduler s(make_self_sched());
  s.start_loop(0, 4);
  EXPECT_TRUE(s.next(0).done());
}

TEST(CentralScheduler, SelfSchedCountsOneSyncPerIteration) {
  CentralScheduler s(make_self_sched());
  s.start_loop(512, 8);
  while (!s.next(3).done()) {
  }
  const SyncStats stats = s.stats();
  EXPECT_EQ(stats.total().total_grabs(), 512);  // Table 3's SS row
  EXPECT_EQ(stats.queues.size(), 1u);
}

TEST(CentralScheduler, StatsAccumulateAcrossLoops) {
  CentralScheduler s(make_self_sched());
  for (int e = 0; e < 3; ++e) {
    s.start_loop(10, 2);
    while (!s.next(0).done()) {
    }
    s.end_loop();
  }
  const SyncStats stats = s.stats();
  EXPECT_EQ(stats.loops, 3);
  EXPECT_EQ(stats.total().total_grabs(), 30);
  EXPECT_DOUBLE_EQ(stats.grabs_per_loop(), 10.0);
}

TEST(CentralScheduler, ResetStatsClears) {
  CentralScheduler s(make_gss());
  s.start_loop(100, 4);
  while (!s.next(0).done()) {
  }
  s.reset_stats();
  EXPECT_EQ(s.stats().total().total_grabs(), 0);
  EXPECT_EQ(s.stats().loops, 0);
}

TEST(CentralScheduler, CloneStartsFresh) {
  CentralScheduler s(make_gss());
  s.start_loop(100, 4);
  (void)s.next(0);
  auto c = s.clone();
  EXPECT_EQ(c->stats().total().total_grabs(), 0);
  c->start_loop(100, 4);
  EXPECT_EQ(c->next(0).range.size(), 25);  // fresh GSS state
}

TEST(CentralScheduler, NameComesFromPolicy) {
  EXPECT_EQ(CentralScheduler(make_gss()).name(), "GSS");
  EXPECT_EQ(CentralScheduler(make_trapezoid()).name(), "TRAPEZOID");
}

TEST(CentralScheduler, NotIndexedCentralQueue) {
  EXPECT_FALSE(CentralScheduler(make_gss()).central_queue_is_indexed());
}

TEST(CentralScheduler, RejectsNullPolicy) {
  EXPECT_THROW(CentralScheduler(nullptr), CheckFailure);
}

TEST(CentralScheduler, IterationTotalsTracked) {
  CentralScheduler s(make_factoring());
  s.start_loop(1000, 4);
  while (!s.next(0).done()) {
  }
  EXPECT_EQ(s.stats().total().iters_local, 1000);
}

}  // namespace
}  // namespace afs
