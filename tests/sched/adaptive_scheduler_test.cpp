// Unit tests for the adaptive scheduler frontier (src/sched/adaptive/):
// spec parsing, the manual next()/report() protocol, conservation, and the
// behaviors that distinguish each algorithm from the paper's nine — ADAPT's
// feedback-driven chunk sizing, TAILOR's re-homing, WORKSHARE's
// sender-initiated pushes, and AFS-NN's nearest-neighbor victim order.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "kernels/gauss.hpp"
#include "machines/machines.hpp"
#include "sched/adaptive/adapt_scheduler.hpp"
#include "sched/adaptive/afs_nn.hpp"
#include "sched/adaptive/tailor_scheduler.hpp"
#include "sched/adaptive/workshare_scheduler.hpp"
#include "sched/registry.hpp"
#include "sim/machine_sim.hpp"
#include "util/check.hpp"

namespace afs {
namespace {

TEST(AdaptiveRegistry, SpecsResolveToCanonicalNames) {
  EXPECT_EQ(make_scheduler("ADAPT")->name(), "ADAPT");
  EXPECT_EQ(make_scheduler("TAILOR")->name(), "TAILOR(0.5)");
  EXPECT_EQ(make_scheduler("TAILOR(0.5)")->name(), "TAILOR(0.5)");
  EXPECT_EQ(make_scheduler("TAILOR(0.25)")->name(), "TAILOR(0.25)");
  EXPECT_EQ(make_scheduler("WORKSHARE")->name(), "WORKSHARE");
  EXPECT_EQ(make_scheduler("AFS-NN")->name(), "AFS-NN");
}

TEST(AdaptiveRegistry, CaseInsensitive) {
  EXPECT_EQ(make_scheduler("adapt")->name(), "ADAPT");
  EXPECT_EQ(make_scheduler("tailor(0.5)")->name(), "TAILOR(0.5)");
  EXPECT_EQ(make_scheduler("workshare")->name(), "WORKSHARE");
  EXPECT_EQ(make_scheduler("afs-nn")->name(), "AFS-NN");
}

TEST(AdaptiveRegistry, OnlyAdaptiveSchedulersWantFeedback) {
  for (const std::string& spec : adaptive_scheduler_specs()) {
    const bool feedback = spec != "AFS-NN";  // AFS-NN adapts topology, not cost
    EXPECT_EQ(make_scheduler(spec)->wants_feedback(), feedback) << spec;
  }
  for (const std::string& spec : paper_scheduler_specs())
    EXPECT_FALSE(make_scheduler(spec)->wants_feedback()) << spec;
}

TEST(AdaptiveRegistry, ThresholdOutOfRangeThrows) {
  EXPECT_THROW(make_scheduler("TAILOR(1.5)"), CheckFailure);
  EXPECT_THROW(make_scheduler("TAILOR(-0.1)"), CheckFailure);
  EXPECT_THROW(make_scheduler("TAILOR(abc)"), CheckFailure);
}

TEST(AdaptiveRegistry, UnknownSpecErrorListsTheGrammar) {
  try {
    make_scheduler("NOPE");
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("valid specs"), std::string::npos);
    EXPECT_NE(msg.find("TAILOR(<threshold>)"), std::string::npos);
    EXPECT_NE(msg.find("ADAPT"), std::string::npos);
    EXPECT_NE(msg.find("WORKSHARE"), std::string::npos);
    EXPECT_NE(msg.find("REV:<spec>"), std::string::npos);
  }
}

/// Drives the manual protocol round-robin across workers, report()ing every
/// grab with a synthetic runtime, and checks the grabs form a disjoint
/// cover of [0, n). The uneven per-worker cost function gives the feedback
/// channel something to chew on.
void drain_and_check_conservation(Scheduler& s, std::int64_t n, int p,
                                  int epochs) {
  for (int epoch = 0; epoch < epochs; ++epoch) {
    s.start_loop(n, p);
    std::vector<IterRange> got;
    double clock = 0.0;
    int consecutive_done = 0;
    for (int w = 0; consecutive_done < p; w = (w + 1) % p) {
      const Grab g = s.next(w);
      if (g.done()) {
        ++consecutive_done;
        continue;
      }
      consecutive_done = 0;
      got.push_back(g.range);
      // Worker w's iterations cost (w+1) time units each: persistent
      // imbalance, which is what TAILOR and WORKSHARE react to.
      const double dur = static_cast<double>(g.range.size()) * (w + 1);
      s.report({w, g.range.begin, g.range.end, clock, clock + dur});
      clock += dur;
    }
    std::sort(got.begin(), got.end(),
              [](const IterRange& a, const IterRange& b) {
                return a.begin < b.begin;
              });
    std::int64_t expect_begin = 0;
    for (const IterRange& r : got) {
      EXPECT_EQ(r.begin, expect_begin)
          << s.name() << " epoch " << epoch << ": gap or overlap";
      EXPECT_LT(r.begin, r.end) << s.name();
      expect_begin = r.end;
    }
    EXPECT_EQ(expect_begin, n) << s.name() << " epoch " << epoch;
    s.end_loop();
  }
}

TEST(AdaptiveProtocol, EveryAdaptiveSchedulerConservesIterations) {
  for (const std::string& spec : adaptive_scheduler_specs()) {
    for (const std::int64_t n : {0L, 1L, 7L, 100L, 1000L}) {
      for (const int p : {1, 3, 8}) {
        auto s = make_scheduler(spec);
        drain_and_check_conservation(*s, n, p, 2);
      }
    }
  }
}

TEST(AdaptiveProtocol, CloneStartsFresh) {
  for (const std::string& spec : adaptive_scheduler_specs()) {
    auto s = make_scheduler(spec);
    drain_and_check_conservation(*s, 64, 4, 1);
    auto c = s->clone();
    EXPECT_EQ(c->name(), s->name()) << spec;
    EXPECT_EQ(c->stats().total().local_grabs, 0) << spec;
    drain_and_check_conservation(*c, 64, 4, 1);
  }
}

TEST(Adapt, ConvergesTowardGssChunksOnUniformFeedback) {
  // Uniform per-iteration cost => dev -> 0 => the grab fraction tends to 1
  // and chunks approach remaining/P (GSS). The first grab, before any
  // feedback, is the conservative remaining/(P*initial_divisor).
  AdaptScheduler s;
  s.start_loop(1024, 4);
  const Grab g0 = s.next(0);
  EXPECT_EQ(g0.range.size(), 128);  // ceil(1024/4 * 1/2)
  EXPECT_EQ(g0.kind, GrabKind::kCentral);
  s.report({0, g0.range.begin, g0.range.end, 0.0, 128.0});  // 1.0 per iter
  std::int64_t remaining = 1024 - 128;
  double clock = 128.0;
  for (int i = 0; i < 6; ++i) {
    const Grab g = s.next(i % 4);
    ASSERT_FALSE(g.done());
    // With zero deviation every grab is exactly ceil(remaining / 4).
    EXPECT_EQ(g.range.size(), (remaining + 3) / 4) << "grab " << i;
    const double dur = static_cast<double>(g.range.size());
    s.report({i % 4, g.range.begin, g.range.end, clock, clock + dur});
    clock += dur;
    remaining -= g.range.size();
  }
}

TEST(Adapt, HighVarianceFeedbackShrinksChunks) {
  AdaptScheduler s;
  std::int64_t remaining = 1 << 20;
  s.start_loop(remaining, 8);
  double clock = 0.0;
  // Alternate cheap and 100x-expensive chunks: dev grows toward mean and
  // the grab fraction mean/(mean+dev) stays well below 1, so every grab
  // after the first report is strictly smaller than GSS's remaining/P.
  for (int i = 0; i < 12; ++i) {
    const Grab g = s.next(i % 8);
    ASSERT_FALSE(g.done());
    if (i >= 2) {
      EXPECT_LT(g.range.size(), remaining / 8)
          << "variance should shrink chunks below remaining/P at grab " << i;
    }
    remaining -= g.range.size();
    const double per_iter = (i % 2 == 0) ? 1.0 : 100.0;
    const double dur = static_cast<double>(g.range.size()) * per_iter;
    s.report({i % 8, g.range.begin, g.range.end, clock, clock + dur});
    clock += dur;
  }
}

TEST(Adapt, ChunkTrajectoryIsGoldenOnGauss) {
  // The full decision sequence of ADAPT on a fixed cell, golden-pinned:
  // any engine change that perturbs feedback timing or ordering shows up
  // here as a changed trajectory, not as a silent perf drift.
  const auto run_history = [](bool batch, bool calendar) {
    MachineConfig m = iris();
    m.epoch_jitter = 0.0;
    SimOptions opts;
    opts.batch_iterations = batch;
    opts.calendar_queue = calendar;
    AdaptScheduler s;
    MachineSim sim(m, opts);
    const LoopProgram prog = GaussKernel::program(24);
    (void)sim.run(prog, s, 4);
    return s.chunk_history();
  };
  const std::vector<std::int64_t> history = run_history(true, true);
  // Gauss(24) runs 23 epochs of a shrinking loop on P=4; this is the
  // complete grant sequence (regenerate with this test's run_history if
  // the *cost model* legitimately changes — never to paper over an
  // engine-determinism regression).
  const std::vector<std::int64_t> golden = {
      3, 3, 3, 2, 3, 3, 2, 1, 1, 1, 1, 5, 4, 3, 3, 2, 2, 1, 1, 1, 5, 4, 3,
      2, 2, 2, 1, 1, 1, 4, 3, 3, 2, 2, 2, 1, 1, 1, 1, 5, 3, 3, 2, 2, 1, 1,
      1, 1, 5, 4, 3, 2, 1, 1, 1, 1, 4, 3, 2, 2, 2, 1, 1, 1, 1, 4, 3, 2, 2,
      2, 1, 1, 1, 3, 3, 2, 2, 1, 1, 1, 1, 1, 3, 2, 2, 2, 2, 1, 1, 1, 3, 2,
      2, 2, 1, 1, 1, 1, 3, 2, 2, 1, 1, 1, 1, 1, 3, 2, 2, 1, 1, 1, 1, 3, 2,
      2, 1, 1, 1, 2, 2, 2, 1, 1, 1, 2, 2, 1, 1, 1, 1, 2, 1, 1, 1, 1, 1, 2,
      1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1};
  EXPECT_EQ(history, golden);
  // And the trajectory is an engine invariant, not a mode artifact.
  EXPECT_EQ(run_history(false, false), history);
  EXPECT_EQ(run_history(true, false), history);
  EXPECT_EQ(run_history(false, true), history);
}

TEST(Workshare, OverloadedProcessorPushesToIdlest) {
  WorkshareScheduler s;
  s.start_loop(100, 2);
  // Proc 1 establishes a cheap cost profile.
  const Grab g1 = s.next(1);
  ASSERT_EQ(g1.kind, GrabKind::kLocal);
  ASSERT_EQ(g1.range.size(), 25);
  s.report({1, g1.range.begin, g1.range.end, 0.0, 0.25});  // 0.01 / iter
  EXPECT_EQ(s.push_count(), 0);

  // Proc 0 reports a 1000x costlier profile: its remaining-work estimate
  // dwarfs the mean and it must push part of its queue to proc 1.
  const Grab g0 = s.next(0);
  ASSERT_EQ(g0.kind, GrabKind::kLocal);
  ASSERT_EQ(g0.range.size(), 25);
  s.report({0, g0.range.begin, g0.range.end, 0.0, 250.0});  // 10.0 / iter
  EXPECT_GT(s.push_count(), 0);

  // The pushed range keeps its origin tag: when proc 1 reaches it, the
  // grab is charged as a remote access against proc 0's queue.
  bool saw_migrated = false;
  for (int i = 0; i < 64; ++i) {
    const Grab g = s.next(1);
    if (g.done()) break;
    if (g.kind == GrabKind::kRemote) {
      saw_migrated = true;
      EXPECT_EQ(g.queue, 0);
      EXPECT_GE(g.range.begin, 25);  // from proc 0's home half
      EXPECT_LT(g.range.end, 50);
      break;
    }
    EXPECT_EQ(g.kind, GrabKind::kLocal);
  }
  EXPECT_TRUE(saw_migrated);
}

TEST(Workshare, NeverGrabsFromOthers) {
  // Sender-initiated means receiver-passive: a worker whose queue is empty
  // is done even while other queues still hold work, and it never probes.
  WorkshareScheduler s;
  EXPECT_EQ(s.victim_probe_count(16), 0);
  s.start_loop(64, 4);
  for (int i = 0; i < 16; ++i) {
    const Grab g = s.next(2);
    if (g.done()) break;
    EXPECT_EQ(g.kind, GrabKind::kLocal);  // no reports => no pushes
    EXPECT_EQ(g.queue, 2);
  }
  EXPECT_TRUE(s.next(2).done());
  EXPECT_FALSE(s.next(0).done());  // others still have their homes
}

TEST(Tailor, RehomesWhenAffinityEstimateDropsBelowThreshold) {
  TailorOptions o;
  o.threshold = 1.0;  // any imperfection triggers a re-home
  TailorScheduler s(o);
  s.start_loop(100, 4);
  // Worker 0 single-handedly drains the whole loop (grabbing locally,
  // then stealing): only its own home quarter executes "at home".
  double clock = 0.0;
  while (true) {
    const Grab g = s.next(0);
    if (g.done()) break;
    const double dur = static_cast<double>(g.range.size());
    s.report({0, g.range.begin, g.range.end, clock, clock + dur});
    clock += dur;
  }
  s.end_loop();
  EXPECT_DOUBLE_EQ(s.last_affinity_estimate(), 0.25);
  EXPECT_EQ(s.rehome_count(), 1);

  // Next epoch the homes follow the execution: worker 0 owns everything,
  // so its first local grab draws from a 100-iteration home queue.
  s.start_loop(100, 4);
  const Grab g = s.next(0);
  EXPECT_EQ(g.kind, GrabKind::kLocal);
  EXPECT_EQ(g.range.size(), 25);  // ceil(100 / k), k = P = 4
  EXPECT_TRUE(s.next(1).done() || s.next(1).kind == GrabKind::kRemote);
}

TEST(Tailor, KeepsHomesWhileAffinityHoldsAboveThreshold) {
  TailorScheduler s;  // threshold 0.5
  for (int epoch = 0; epoch < 3; ++epoch) {
    s.start_loop(80, 4);
    double clock = 0.0;
    // Round-robin drain: the symmetric queues empty in lockstep, so every
    // grab stays local — perfect affinity, and the homes must not move.
    int consecutive_done = 0;
    for (int w = 0; consecutive_done < 4; w = (w + 1) % 4) {
      const Grab g = s.next(w);
      if (g.done()) {
        ++consecutive_done;
        continue;
      }
      consecutive_done = 0;
      EXPECT_EQ(g.kind, GrabKind::kLocal) << "epoch " << epoch;
      const double dur = static_cast<double>(g.range.size());
      s.report({w, g.range.begin, g.range.end, clock, clock + dur});
      clock += dur;
    }
    s.end_loop();
    EXPECT_DOUBLE_EQ(s.last_affinity_estimate(), 1.0);
  }
  EXPECT_EQ(s.rehome_count(), 0);
}

TEST(AfsNn, StealsFromNearestNonEmptyQueueNotMostLoaded) {
  auto s = make_afs_nn();
  s->start_loop(40, 4);  // homes: 10 iterations per processor
  // Shrink queue 2 to make it strictly lighter than queue 0.
  ASSERT_FALSE(s->next(2).done());
  ASSERT_FALSE(s->next(2).done());
  // Drain worker 1's own queue.
  while (true) {
    const Grab g = s->next(1);
    ASSERT_FALSE(g.done());
    if (g.kind == GrabKind::kRemote) {
      // Nearest first: distance-1 right neighbor (queue 2) wins even
      // though queue 0 holds more work. Plain AFS would pick queue 0.
      EXPECT_EQ(g.queue, 2);
      break;
    }
    EXPECT_EQ(g.queue, 1);
  }
}

TEST(AfsNn, FallsBackToLeftNeighborWhenRightIsEmpty) {
  auto s = make_afs_nn();
  s->start_loop(40, 4);  // homes of 10; a 10-queue drains in 6 local grabs
  for (int i = 0; i < 6; ++i) {
    const Grab g = s->next(2);  // empty the right neighbor's queue
    ASSERT_EQ(g.kind, GrabKind::kLocal) << "grab " << i;
  }
  for (int i = 0; i < 6; ++i) {
    const Grab g = s->next(1);
    ASSERT_EQ(g.kind, GrabKind::kLocal) << "grab " << i;
  }
  // Queue 2 (right, distance 1) is empty, so the scan falls back to queue
  // 0 (left, distance 1) before ever reaching queue 3 at distance 2.
  const Grab g = s->next(1);
  EXPECT_EQ(g.kind, GrabKind::kRemote);
  EXPECT_EQ(g.queue, 0);
}

}  // namespace
}  // namespace afs
