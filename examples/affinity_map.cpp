// Visualizes the paper's central idea: which processor executes which
// iterations, epoch after epoch. Each row of the map is one epoch of a
// parallel loop; each column is a band of iterations; the glyph is the id
// of the processor that executed it. Under AFS the columns stay vertical
// (affinity); under GSS they shift every epoch (every row reload); under
// AFS with an imbalanced tail you can watch steals nibble the edges.
//
// Usage: affinity_map [scheduler] [n] [procs] [epochs] [imbalance]
//   imbalance: 0 = balanced loop, 1 = heavy first 12.5% of iterations
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "sched/registry.hpp"
#include "util/rng.hpp"

namespace {

char glyph(int worker) {
  if (worker < 0) return '?';
  if (worker < 10) return static_cast<char>('0' + worker);
  return static_cast<char>('a' + worker - 10);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace afs;
  const std::string spec = argc > 1 ? argv[1] : "AFS";
  const std::int64_t n = argc > 2 ? std::atoll(argv[2]) : 512;
  const int p = argc > 3 ? std::atoi(argv[3]) : 8;
  const int epochs = argc > 4 ? std::atoi(argv[4]) : 12;
  const bool imbalanced = argc > 5 && std::atoi(argv[5]) != 0;

  auto sched = make_scheduler(spec);
  std::cout << "chunk-to-processor map, " << sched->name() << ", N=" << n
            << ", P=" << p << (imbalanced ? ", heavy head" : ", balanced")
            << " (each column ~" << (n / 64) << " iterations)\n\n";

  // Drive the scheduler directly, single-threaded, simulating relative
  // worker progress: each worker owes "debt" equal to the cost of what it
  // has executed; the least-indebted worker asks next. Heavy iterations
  // (first 12.5%) cost 8x when imbalance is on.
  Xoshiro256 rng(7);
  for (int e = 0; e < epochs; ++e) {
    sched->start_loop(n, p);
    std::vector<int> owner(static_cast<std::size_t>(n), -1);
    // Small random start offsets model real-machine noise: without them,
    // central-queue schedulers would reach the queue in the same order
    // every epoch and look deceptively affinity-friendly.
    std::vector<double> debt(static_cast<std::size_t>(p));
    for (auto& d : debt) d = rng.next_double() * (static_cast<double>(n) / p / 4.0);
    std::vector<bool> done(static_cast<std::size_t>(p), false);
    int done_count = 0;
    while (done_count < p) {
      int w = -1;
      for (int i = 0; i < p; ++i)
        if (!done[static_cast<std::size_t>(i)] &&
            (w < 0 || debt[static_cast<std::size_t>(i)] <
                          debt[static_cast<std::size_t>(w)]))
          w = i;
      const Grab g = sched->next(w);
      if (g.done()) {
        done[static_cast<std::size_t>(w)] = true;
        ++done_count;
        continue;
      }
      for (std::int64_t i = g.range.begin; i < g.range.end; ++i) {
        owner[static_cast<std::size_t>(i)] = w;
        const bool heavy = imbalanced && i < n / 8;
        debt[static_cast<std::size_t>(w)] += heavy ? 8.0 : 1.0;
      }
    }
    sched->end_loop();

    // Render 64 columns: majority owner per band.
    std::string row(64, ' ');
    for (int c = 0; c < 64; ++c) {
      const std::int64_t lo = c * n / 64;
      const std::int64_t hi = (c + 1) * n / 64;
      std::vector<int> votes(static_cast<std::size_t>(p), 0);
      for (std::int64_t i = lo; i < hi; ++i)
        if (owner[static_cast<std::size_t>(i)] >= 0)
          ++votes[static_cast<std::size_t>(owner[static_cast<std::size_t>(i)])];
      int best = 0;
      for (int i = 1; i < p; ++i)
        if (votes[static_cast<std::size_t>(i)] > votes[static_cast<std::size_t>(best)])
          best = i;
      row[static_cast<std::size_t>(c)] = glyph(best);
    }
    std::cout << "epoch " << (e < 10 ? " " : "") << e << "  " << row << "\n";
  }

  std::cout << "\nVertical stripes = iterations stayed home (affinity).\n"
               "Shifting patterns = every epoch reloads caches.\n"
               "Try: affinity_map GSS ; affinity_map AFS 512 8 12 1 ;\n"
               "     affinity_map AFS-LE 512 8 12 1 (fewer repeated steals)\n";
  return 0;
}
