// Extending the library: write your own loop scheduler by implementing
// the Scheduler interface, then run it through the same runtime, kernels
// and simulator as the built-ins. The example implements "EVEN-ODD"
// scheduling — a deliberately naive central-queue policy that alternates
// one big and one small chunk — and compares it against GSS and AFS on a
// real kernel and on the simulated Iris.
#include <iostream>
#include <mutex>

#include "kernels/gauss.hpp"
#include "machines/machines.hpp"
#include "sched/registry.hpp"
#include "sched/scheduler.hpp"
#include "sim/machine_sim.hpp"
#include "util/table.hpp"

namespace {

// A user-defined scheduler only has to provide start_loop/next/stats.
class EvenOddScheduler final : public afs::Scheduler {
 public:
  const std::string& name() const override {
    static const std::string kName = "EVEN-ODD";
    return kName;
  }

  void start_loop(std::int64_t n, int p) override {
    next_ = 0;
    end_ = n;
    p_ = p;
    flip_ = false;
    ++loops_;
  }

  afs::Grab next(int /*worker*/) override {
    std::scoped_lock lock(mutex_);
    const std::int64_t remaining = end_ - next_;
    if (remaining <= 0) return {};
    // Alternate 2/P and 1/(2P) of the remaining iterations.
    const std::int64_t denom = flip_ ? 2 * p_ : (p_ + 1) / 2;
    flip_ = !flip_;
    const std::int64_t c =
        std::max<std::int64_t>(1, remaining / std::max<std::int64_t>(1, denom));
    afs::Grab g{{next_, next_ + c}, afs::GrabKind::kCentral, 0};
    next_ += c;
    ++stats_.local_grabs;
    stats_.iters_local += c;
    return g;
  }

  afs::SyncStats stats() const override { return {{stats_}, loops_}; }
  void reset_stats() override { stats_ = {}; loops_ = 0; }
  std::unique_ptr<afs::Scheduler> clone() const override {
    return std::make_unique<EvenOddScheduler>();
  }

 private:
  std::mutex mutex_;
  std::int64_t next_ = 0, end_ = 0;
  int p_ = 1;
  bool flip_ = false;
  afs::QueueStats stats_;
  std::int64_t loops_ = 0;
};

}  // namespace

int main() {
  using namespace afs;

  // 1. Correctness on the real-thread substrate: the custom scheduler must
  //    produce the same elimination result as the serial code.
  GaussKernel serial(96), par(96);
  serial.init(5);
  par.init(5);
  serial.eliminate_serial();
  {
    ThreadPool pool(4);
    EvenOddScheduler sched;
    par.eliminate_parallel(pool, sched);
  }
  std::cout << "custom scheduler correctness: "
            << (serial.matrix() == par.matrix() ? "OK (bit-exact)" : "BROKEN")
            << "\n\n";

  // 2. Performance on the simulated Iris, against two built-ins.
  MachineSim sim(iris());
  const auto program = GaussKernel::program(256);
  Table t({"scheduler", "P=8 time", "grabs", "misses"});
  for (int which = 0; which < 3; ++which) {
    std::unique_ptr<Scheduler> sched;
    if (which == 0) sched = std::make_unique<EvenOddScheduler>();
    if (which == 1) sched = make_scheduler("GSS");
    if (which == 2) sched = make_scheduler("AFS");
    const SimResult r = sim.run(program, *sched, 8);
    t.add_row({sched->name(), Table::num(r.makespan, 0),
               Table::num(r.sched_stats.total().total_grabs()),
               Table::num(r.misses)});
  }
  std::cout << t.to_ascii()
            << "\nEVEN-ODD works, but like every central-queue scheduler it\n"
               "reloads caches constantly — the simulator makes the cost\n"
               "visible without owning a 1992 SGI.\n";
  return 0;
}
