// Interactive version of the paper's Table 2 experiment: a perfectly
// balanced loop where one processor arrives late. Shows how each dynamic
// scheduler absorbs the delay (the late processor's queue is consumed by
// the others) and how the choice of AFS's k trades absorption against
// local-queue traffic.
//
// Usage: delayed_start [n] [procs] [delay-fraction]
//   e.g. delayed_start 100000000 8 0.125
#include <cstdlib>
#include <iostream>

#include "kernels/synthetic.hpp"
#include "machines/machines.hpp"
#include "sched/bounds.hpp"
#include "sched/registry.hpp"
#include "sim/machine_sim.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace afs;
  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 100'000'000;
  const int p = argc > 2 ? std::atoi(argv[2]) : 8;
  const double frac = argc > 3 ? std::atof(argv[3]) : 0.125;

  std::cout << "Balanced loop, N=" << n << ", P=" << p << ", processor 0 "
            << "delayed by " << frac << "N iterations' worth of time.\n"
            << "Perfect absorption would finish at max(N(1+frac)/P, frac*N)."
            << "\n\n";

  MachineConfig machine = iris();
  machine.epoch_jitter = 0.0;
  SimOptions opts;
  // The late arrival is one initial stall in the fault-injection model.
  opts.perturb.start_delays.assign(static_cast<std::size_t>(p), 0.0);
  opts.perturb.start_delays[0] = frac * static_cast<double>(n);
  MachineSim sim(machine, opts);

  const double ideal = std::max(
      static_cast<double>(n) * (1.0 + frac) / p, frac * static_cast<double>(n));

  Table t({"scheduler", "time", "vs ideal", "steals"});
  for (const char* spec :
       {"GSS", "TRAPEZOID", "FACTORING", "AFS", "AFS(k=2)", "STATIC"}) {
    auto sched = make_scheduler(spec);
    const SimResult r = sim.run(balanced_program(n), *sched, p);
    t.add_row({sched->name(), Table::num(r.makespan, 0),
               Table::num(r.makespan / ideal, 3), Table::num(r.remote_grabs)});
  }
  std::cout << t.to_ascii();

  std::cout << "\nTheorem 3.2 bound on AFS finish-time skew: k=P -> "
            << Table::num(afs_imbalance_bound(n, p, p), 1)
            << " iterations; k=2 -> "
            << Table::num(afs_imbalance_bound(n, p, 2), 1) << " iterations.\n"
            << "STATIC cannot absorb the delay at all: its time is the\n"
            << "delayed processor's start plus its full share.\n";
  return 0;
}
