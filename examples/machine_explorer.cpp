// What-if explorer for the simulator substrate: run one kernel across the
// four machine models of the paper and print, for each, how every
// scheduler scales — the condensed version of the paper's whole
// evaluation, in one command.
//
// Usage: machine_explorer [kernel] [procs]
//   kernel: gauss | sor | tc | adjoint      (default gauss)
//   procs : max processors to sweep to      (default machine max, <= 16)
#include <algorithm>
#include <iostream>
#include <string>

#include "kernels/adjoint_convolution.hpp"
#include "kernels/gauss.hpp"
#include "kernels/sor.hpp"
#include "kernels/transitive_closure.hpp"
#include "machines/machines.hpp"
#include "sched/registry.hpp"
#include "sim/machine_sim.hpp"
#include "util/table.hpp"
#include "workload/graphs.hpp"

int main(int argc, char** argv) {
  using namespace afs;
  const std::string kernel = argc > 1 ? argv[1] : "gauss";
  const int max_procs = argc > 2 ? std::atoi(argv[2]) : 16;

  LoopProgram program;
  if (kernel == "gauss") {
    program = GaussKernel::program(256);
  } else if (kernel == "sor") {
    program = SorKernel::program(256, 16);
  } else if (kernel == "tc") {
    program = TransitiveClosureKernel::program(clique_graph(256, 128));
  } else if (kernel == "adjoint") {
    program = AdjointConvolutionKernel::program(40);
  } else {
    std::cerr << "unknown kernel '" << kernel
              << "' (want gauss|sor|tc|adjoint)\n";
    return 1;
  }
  std::cout << "kernel: " << program.name << "\n\n";

  for (const MachineConfig& m : {iris(), symmetry(), butterfly1(), ksr1()}) {
    MachineSim sim(m);
    const double serial = sim.ideal_serial_time(program);
    std::cout << "-- " << m.name << " --\n";
    Table t({"scheduler", "P", "time", "speedup", "misses", "steals"});
    for (const char* spec : {"AFS", "GSS", "TRAPEZOID", "STATIC"}) {
      for (int p : {1, 4, 8, 16}) {
        if (p > std::min(m.max_processors, max_procs)) continue;
        auto sched = make_scheduler(spec);
        const SimResult r = sim.run(program, *sched, p);
        t.add_row({spec, std::to_string(p), Table::num(r.makespan, 0),
                   Table::num(serial / r.makespan, 2), Table::num(r.misses),
                   Table::num(r.remote_grabs)});
      }
    }
    std::cout << t.to_ascii() << "\n";
  }
  std::cout << "Reading guide: on the iris/ksr1 models AFS's speedup keeps\n"
               "climbing where GSS/TRAPEZOID flatten (bus/ring saturation);\n"
               "on the symmetry model all schedulers look alike because\n"
               "compute dwarfs communication (paper §5.1).\n";
  return 0;
}
