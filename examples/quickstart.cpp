// Quickstart: schedule a parallel loop with affinity scheduling in ~20
// lines. Builds a thread pool, picks a scheduler by name, and runs a
// parallel reduction over a big array — the same parallel_for the paper's
// kernels use.
//
// Usage: quickstart [scheduler-spec] [threads]
//   e.g. quickstart AFS 8
//        quickstart GSS 4
#include <cmath>
#include <iostream>
#include <numeric>
#include <vector>

#include "runtime/parallel_reduce.hpp"
#include "sched/registry.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  const std::string spec = argc > 1 ? argv[1] : "AFS";
  const int threads = argc > 2 ? std::atoi(argv[2]) : 4;

  // 1. A persistent worker pool (create once, reuse for every loop).
  afs::ThreadPool pool(threads);

  // 2. Any scheduler from the registry: AFS, GSS, FACTORING, TRAPEZOID,
  //    SS, STATIC, MOD-FACTORING, AFS(k=2), REV:GSS, ...
  auto sched = afs::make_scheduler(spec);

  // 3. Data: sum of square roots, 4M elements.
  const std::int64_t n = 4'000'000;
  std::vector<double> data(n);
  std::iota(data.begin(), data.end(), 0.0);

  afs::Stopwatch sw;
  const double total = afs::parallel_sum<double>(
      pool, *sched, n, [&data](std::int64_t i) {
        return std::sqrt(data[static_cast<std::size_t>(i)]);
      });
  const double elapsed = sw.millis();

  std::cout << "scheduler : " << sched->name() << "\n"
            << "threads   : " << threads << "\n"
            << "sum       : " << std::fixed << total << "\n"
            << "time      : " << elapsed << " ms\n";

  // 4. The scheduler kept sync-op statistics (the paper's §4.6 metric).
  const afs::SyncStats stats = sched->stats();
  std::cout << "work-queue removals: " << stats.total().total_grabs() << " ("
            << stats.queues.size() << " queue(s))\n";
  return 0;
}
