// A real iterative solver on the library: weighted-Jacobi SOR sweeps over
// an n x n grid, with the parallel loop over rows scheduled by any of the
// paper's algorithms. Verifies the parallel result against a serial
// reference, and reports per-sweep timing plus the scheduler's sync-op
// profile — a small model of how a numerical code adopts the library.
//
// Usage: sor_solver [n] [sweeps] [scheduler-spec] [threads]
#include <cstdlib>
#include <iostream>

#include "kernels/sor.hpp"
#include "sched/registry.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 512;
  const int sweeps = argc > 2 ? std::atoi(argv[2]) : 16;
  const std::string spec = argc > 3 ? argv[3] : "AFS";
  const int threads = argc > 4 ? std::atoi(argv[4]) : 4;

  std::cout << "SOR " << n << "x" << n << ", " << sweeps << " sweeps, "
            << spec << " on " << threads << " threads\n";

  afs::SorKernel parallel_grid(n), serial_grid(n);
  parallel_grid.init(2026);
  serial_grid.init(2026);

  afs::ThreadPool pool(threads);
  auto sched = afs::make_scheduler(spec);

  afs::Stopwatch sw;
  for (int s = 0; s < sweeps; ++s)
    parallel_grid.epoch_parallel(pool, *sched);
  const double par_ms = sw.millis();

  sw.reset();
  for (int s = 0; s < sweeps; ++s) serial_grid.epoch_serial();
  const double ser_ms = sw.millis();

  const bool exact = parallel_grid.grid() == serial_grid.grid();
  std::cout << "parallel : " << par_ms << " ms (" << par_ms / sweeps
            << " ms/sweep)\n"
            << "serial   : " << ser_ms << " ms\n"
            << "checksum : " << parallel_grid.checksum()
            << (exact ? "  [matches serial bit-for-bit]" : "  [MISMATCH!]")
            << "\n";

  const afs::SyncStats stats = sched->stats();
  std::cout << "scheduler profile: " << stats.total().total_grabs()
            << " removals over " << stats.loops << " loops across "
            << stats.queues.size() << " queue(s); "
            << stats.total().remote_grabs << " were remote steals\n";
  return exact ? EXIT_SUCCESS : EXIT_FAILURE;
}
