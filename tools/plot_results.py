#!/usr/bin/env python3
"""Plot the reproduction CSVs in bench_results/.

Each fig*.csv is long-format: figure,scheduler,procs,time,speedup,...
This renders one PNG per figure (completion time vs processors, log-y,
one line per scheduler) mirroring the paper's plots.

Usage:
  python3 tools/plot_results.py [bench_results] [out_dir]

Requires matplotlib; without it, falls back to ASCII plots on stdout.
"""
import csv
import os
import sys
from collections import defaultdict


def load(path):
    series = defaultdict(list)  # scheduler -> [(procs, time)]
    with open(path) as f:
        for row in csv.DictReader(f):
            if "scheduler" not in row or "procs" not in row:
                return {}
            series[row["scheduler"]].append(
                (int(row["procs"]), float(row["time"]))
            )
    for pts in series.values():
        pts.sort()
    return series


def ascii_plot(name, series, width=60):
    print(f"\n== {name} ==")
    all_t = [t for pts in series.values() for _, t in pts]
    if not all_t:
        return
    lo, hi = min(all_t), max(all_t)
    span = (hi - lo) or 1.0
    for sched, pts in sorted(series.items()):
        print(f"  {sched}")
        for p, t in pts:
            bar = int((t - lo) / span * width)
            print(f"    P={p:3d} {'#' * bar} {t:.0f}")


def main():
    src = sys.argv[1] if len(sys.argv) > 1 else "bench_results"
    out = sys.argv[2] if len(sys.argv) > 2 else "bench_results/plots"
    if not os.path.isdir(src):
        sys.exit(f"no such directory: {src} (run the bench binaries first)")

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        plt = None
        print("matplotlib not available; ASCII fallback", file=sys.stderr)

    for name in sorted(os.listdir(src)):
        if not (name.startswith("fig") and name.endswith(".csv")):
            continue
        series = load(os.path.join(src, name))
        if not series:
            continue
        fig_id = name[:-4]
        if plt is None:
            ascii_plot(fig_id, series)
            continue
        os.makedirs(out, exist_ok=True)
        plt.figure(figsize=(7, 5))
        for sched, pts in sorted(series.items()):
            xs, ys = zip(*pts)
            plt.plot(xs, ys, marker="o", label=sched)
        plt.xlabel("processors")
        plt.ylabel("completion time (simulator units)")
        plt.yscale("log")
        plt.title(fig_id)
        plt.legend(fontsize=8)
        plt.grid(True, alpha=0.3)
        path = os.path.join(out, f"{fig_id}.png")
        plt.savefig(path, dpi=120, bbox_inches="tight")
        plt.close()
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
