// trace_report: decode simulator traces (.cctrace or .trace.jsonl),
// print per-run analytics, and optionally render a self-contained
// HTML/SVG Gantt timeline.
//
//   trace_report TRACE... [--html=PATH] [--title=TEXT]
//
// For every input trace the tool prints, per run: the (machine, program,
// scheduler, P) header, makespan, affinity score, steal totals, a
// per-processor utilization breakdown, and the steal matrix. The trace
// conservation law (executed + abandoned == announced iterations) is
// checked on every run; a violation — or any decode error — makes the
// exit status nonzero, so CI can gate on it.
//
// --html renders all decoded runs into one standalone HTML document
// (written atomically), e.g.
//
//   trace_report bench_results/fig15.p8.AFS.cctrace --html=fig15_afs.html

#include <cstdio>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "trace/analysis.hpp"
#include "trace/gantt.hpp"
#include "trace/trace_reader.hpp"
#include "util/atomic_file.hpp"
#include "util/table.hpp"

namespace {

void print_usage(std::ostream& out) {
  out << "usage: trace_report TRACE... [--html=PATH] [--title=TEXT]\n"
      << "  TRACE         a .cctrace or .trace.jsonl simulator trace\n"
      << "                (format sniffed from the file header)\n"
      << "  --html=PATH   render all runs as a standalone HTML/SVG Gantt\n"
      << "  --title=TEXT  document heading for --html\n"
      << "Exits nonzero on decode errors or a trace conservation violation\n"
      << "(executed + abandoned iterations must equal the announced total).\n";
}

std::string fmt(double v, int prec = 1) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

void print_run(const afs::TraceAnalysis& a, std::ostream& out) {
  out << "run: " << a.scheduler << " | " << a.program << " on " << a.machine
      << " | P=" << a.p << "\n";
  out << "  makespan " << fmt(a.makespan) << ", epochs " << a.epochs
      << ", records " << a.records << "\n";
  out << "  iterations: " << a.total_iterations << " announced, "
      << a.executed_iterations << " executed, " << a.abandoned_iterations
      << " abandoned -> conservation "
      << (a.conserved() ? "OK" : "VIOLATED") << "\n";
  out << "  affinity score " << fmt(a.affinity_score(), 4) << " ("
      << a.affine_iterations << "/" << a.scored_iterations
      << " re-executed by their previous-epoch owner)\n";
  out << "  stolen iterations " << a.remote_steals() << ", fault-reassigned "
      << a.fault_steals() << "\n";

  afs::Table t({"proc", "busy", "memory", "sync", "stall", "idle", "util%",
                "iters", "chunks"});
  for (std::size_t p = 0; p < a.procs.size(); ++p) {
    const afs::ProcBreakdown& pb = a.procs[p];
    const double util = a.makespan > 0 ? 100.0 * pb.exec / a.makespan : 0.0;
    t.add_row({"P" + std::to_string(p), fmt(pb.busy()), fmt(pb.memory),
               fmt(pb.sync), fmt(pb.stall), fmt(pb.idle), fmt(util),
               std::to_string(pb.iterations), std::to_string(pb.chunks)});
  }
  out << t.to_ascii();

  if (a.remote_steals() > 0 || a.fault_steals() > 0) {
    std::vector<std::string> headers{"thief\\victim"};
    for (std::size_t v = 0; v < a.procs.size(); ++v)
      headers.push_back("P" + std::to_string(v));
    afs::Table steals(std::move(headers));
    for (std::size_t th = 0; th < a.procs.size(); ++th) {
      std::vector<std::string> row{"P" + std::to_string(th)};
      for (std::size_t v = 0; v < a.procs.size(); ++v) {
        const std::int64_t iters =
            a.steal_iters[th][v] + a.fault_steal_iters[th][v];
        row.push_back(iters == 0 ? "." : std::to_string(iters));
      }
      steals.add_row(std::move(row));
    }
    out << "  steal matrix (iterations; remote grabs + fault reassignment):\n"
        << steals.to_ascii();
  }
  out << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::string html_path;
  std::string title;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return EXIT_SUCCESS;
    } else if (arg.rfind("--html=", 0) == 0) {
      html_path = arg.substr(7);
      if (html_path.empty()) {
        std::cerr << "trace_report: --html needs a path\n";
        return 2;
      }
    } else if (arg.rfind("--title=", 0) == 0) {
      title = arg.substr(8);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "trace_report: unknown argument '" << arg << "'\n";
      print_usage(std::cerr);
      return 2;
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::cerr << "trace_report: no trace files given\n";
    print_usage(std::cerr);
    return 2;
  }

  bool violated = false;
  std::vector<afs::TraceRecord> all_records;
  try {
    for (const std::string& path : inputs) {
      std::vector<afs::TraceRecord> records = afs::read_trace(path);
      const std::vector<afs::TraceAnalysis> runs =
          afs::analyze_trace(records);
      std::cout << "== " << path << " (" << records.size() << " records, "
                << runs.size() << " run" << (runs.size() == 1 ? "" : "s")
                << ") ==\n";
      for (const afs::TraceAnalysis& a : runs) {
        print_run(a, std::cout);
        if (!a.conserved()) violated = true;
      }
      all_records.insert(all_records.end(),
                         std::make_move_iterator(records.begin()),
                         std::make_move_iterator(records.end()));
    }

    if (!html_path.empty()) {
      if (title.empty())
        title = inputs.size() == 1 ? inputs.front()
                                   : std::to_string(inputs.size()) +
                                         " simulator traces";
      afs::write_file_atomic(html_path,
                             afs::render_gantt_html(all_records, title));
      std::cout << "(timeline: " << html_path << ")\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "trace_report: " << e.what() << "\n";
    return EXIT_FAILURE;
  }

  if (violated) {
    std::cerr << "trace_report: trace conservation violated (see above)\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
