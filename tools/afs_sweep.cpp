// afs_sweep: the batch driver over the experiment registry and the
// content-addressed result store (docs/SWEEP_SERVICE.md).
//
//   afs_sweep list
//       every registered experiment id with title and kind
//   afs_sweep run fig04 tab2 [shared flags]
//   afs_sweep run --all [shared flags]
//       run experiments in registry order, in one process, sharing one
//       worker pool (--jobs=N) and one result store. The store defaults
//       to <out-dir>/.store; --store=DIR moves it, --no-store disables
//       it. Exit code = first nonzero experiment exit.
//   afs_sweep run --kernel=K --machine=M --schedulers=S1,S2 [--procs=...]
//       [--perturb=...] [shared flags]
//       an arbitrary user grid through the same harness (see
//       src/experiments/grid.hpp for the K/M/perturb grammars); writes
//       <out-dir>/grid.csv.
//   afs_sweep cache stats [--store=DIR]
//   afs_sweep cache gc [--store=DIR] [--max-age-days=D] [--max-bytes=B]
//       store maintenance: entry count/bytes, and eviction by age then
//       LRU size cap.
//
// Shared flags are exactly the bench-binary flags (see --help).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "experiments/bench_cli.hpp"
#include "experiments/grid.hpp"
#include "experiments/registry.hpp"
#include "runtime/thread_pool.hpp"
#include "store/result_store.hpp"
#include "util/table.hpp"

namespace {

using namespace afs;

int usage(std::ostream& out, int rc) {
  out << "usage: afs_sweep <command> [args]\n"
         "  list                      registered experiments\n"
         "  run <id>... [flags]       run experiments by id\n"
         "  run --all [flags]         run every runnable experiment\n"
         "  run --kernel=K --machine=M --schedulers=S,S [--procs=P,P]\n"
         "      [--perturb=SPEC] [flags]   run a user-defined grid\n"
         "  cache stats [--store=DIR] store entry count and bytes\n"
         "  cache gc [--store=DIR] [--max-age-days=D] [--max-bytes=B]\n"
         "                            evict by age, then by LRU size cap\n"
         "shared flags: the bench-binary flags (afs_sweep run --help);\n"
         "the store defaults to <out-dir>/.store unless --no-store\n";
  return rc;
}

const char* kind_name(ExperimentKind k) {
  switch (k) {
    case ExperimentKind::kFigure:
      return "figure";
    case ExperimentKind::kTable:
      return "table";
    case ExperimentKind::kMicro:
      return "micro";
  }
  return "?";
}

int cmd_list() {
  Table t({"id", "kind", "csv", "title"});
  for (const Experiment& e : all_experiments()) {
    std::string csvs;
    for (const std::string& c : e.csv_ids)
      csvs += (csvs.empty() ? "" : " ") + c + ".csv";
    t.add_row({e.id, kind_name(e.kind), csvs, e.title});
  }
  std::cout << t.to_ascii();
  return 0;
}

/// Store root for maintenance commands: --store=DIR or <out-dir>/.store.
std::string store_root(const bench::BenchCli& cli) {
  return cli.store_dir.empty() ? cli.out_dir + "/.store" : cli.store_dir;
}

int cmd_cache(const std::vector<std::string>& args) {
  if (args.empty()) return usage(std::cerr, 2);
  const std::string sub = args[0];
  bench::BenchCli cli;
  GcOptions gc;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a.rfind("--store=", 0) == 0 || a.rfind("--out-dir=", 0) == 0) {
      std::string error;
      bool help = false;
      if (!bench::parse_cli_args({a}, cli, error, help)) {
        std::cerr << "afs_sweep cache: " << error << "\n";
        return 2;
      }
    } else if (a.rfind("--max-age-days=", 0) == 0) {
      gc.max_age_days = std::strtod(a.c_str() + 15, nullptr);
      if (!(gc.max_age_days > 0.0)) {
        std::cerr << "afs_sweep cache: bad --max-age-days value\n";
        return 2;
      }
    } else if (a.rfind("--max-bytes=", 0) == 0) {
      gc.max_bytes = std::strtoll(a.c_str() + 12, nullptr, 10);
      if (gc.max_bytes < 0) {
        std::cerr << "afs_sweep cache: bad --max-bytes value\n";
        return 2;
      }
    } else {
      std::cerr << "afs_sweep cache: unknown argument '" << a << "'\n";
      return 2;
    }
  }
  ResultStore store(store_root(cli));
  if (sub == "stats") {
    const StoreStats s = store.scan();
    std::cout << "store: " << store.root() << "\n"
              << "entries: " << s.entries << "\n"
              << "bytes: " << s.bytes << "\n";
    return 0;
  }
  if (sub == "gc") {
    if (gc.max_age_days <= 0.0 && gc.max_bytes < 0) {
      std::cerr << "afs_sweep cache gc: nothing to do — pass "
                   "--max-age-days=D and/or --max-bytes=B\n";
      return 2;
    }
    const GcOutcome o = store.gc(gc);
    std::cout << "store: " << store.root() << "\n"
              << "scanned: " << o.scanned << "\n"
              << "evicted: " << o.evicted << "\n"
              << "bytes: " << o.bytes_before << " -> " << o.bytes_after
              << "\n";
    return 0;
  }
  std::cerr << "afs_sweep cache: unknown subcommand '" << sub << "'\n";
  return usage(std::cerr, 2);
}

int cmd_run(const std::vector<std::string>& args) {
  std::vector<std::string> ids;
  std::vector<std::string> shared;
  bool run_all = false;
  std::string kernel, machine, schedulers, perturb;
  for (const std::string& a : args) {
    if (a == "--all") {
      run_all = true;
    } else if (a.rfind("--kernel=", 0) == 0) {
      kernel = a.substr(9);
    } else if (a.rfind("--machine=", 0) == 0) {
      machine = a.substr(10);
    } else if (a.rfind("--schedulers=", 0) == 0) {
      schedulers = a.substr(13);
    } else if (a.rfind("--perturb=", 0) == 0) {
      perturb = a.substr(10);
    } else if (a.rfind("--", 0) == 0) {
      shared.push_back(a);
    } else {
      ids.push_back(a);
    }
  }
  const bool grid = !kernel.empty() || !machine.empty() || !schedulers.empty();
  if (grid && (run_all || !ids.empty())) {
    std::cerr << "afs_sweep run: a grid (--kernel/--machine/--schedulers) "
                 "cannot be combined with experiment ids\n";
    return 2;
  }
  if (!grid && !run_all && ids.empty()) return usage(std::cerr, 2);

  bench::BenchCli cli;
  std::string error;
  bool want_help = false;
  if (!bench::parse_cli_args(shared, cli, error, want_help)) {
    std::cerr << "afs_sweep run: " << error << "\n";
    bench::print_usage("afs_sweep run", std::cerr);
    return 2;
  }
  if (want_help) {
    bench::print_usage("afs_sweep run", std::cout);
    return 0;
  }

  ExperimentContext ctx;
  ctx.cli = cli;

  // The driver's store is ON by default: sweeps over overlapping grids
  // are exactly where the content-addressed cache pays off.
  std::optional<ResultStore> store;
  if (!cli.no_store) {
    store.emplace(store_root(cli));
    ctx.store = &*store;
  }

  // One worker pool for every sweep in this invocation. jobs == 1 keeps
  // the bit-identity reference path (serial in the caller).
  std::optional<ThreadPool> pool;
  if (cli.jobs > 1) {
    pool.emplace(cli.jobs);
    ctx.pool = &*pool;
  }

  int rc = 0;
  if (grid) {
    if (kernel.empty() || machine.empty() || schedulers.empty()) {
      std::cerr << "afs_sweep run: a grid needs all of --kernel=, "
                   "--machine= and --schedulers=\n";
      return 2;
    }
    try {
      FigureSpec spec;
      spec.id = "grid";
      spec.machine = parse_machine_spec(machine);
      spec.program = parse_kernel_spec(kernel);
      spec.title = kernel + " on " + machine;
      spec.procs = cli.procs.empty() ? std::vector<int>{spec.machine.max_processors}
                                     : cli.procs;
      int max_p = 0;
      for (int p : spec.procs) max_p = std::max(max_p, p);
      if (!perturb.empty())
        spec.sim_options.perturb = parse_perturb_spec(perturb, max_p);
      std::size_t pos = 0;
      while (pos <= schedulers.size()) {
        const std::size_t comma = schedulers.find(',', pos);
        const std::string s = schedulers.substr(pos, comma - pos);
        if (s.empty()) throw std::runtime_error("empty scheduler spec");
        spec.schedulers.push_back(entry(s));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
      // Validate the scheduler specs before running anything.
      for (const SchedulerEntry& se : spec.schedulers) se.make();

      const Experiment e = figure_experiment("grid", spec.title,
                                             [&spec] { return spec; }, {});
      rc = run_experiment(e, ctx, std::cout);
    } catch (const std::exception& ex) {
      std::cerr << "afs_sweep run: " << ex.what() << "\n";
      return 2;
    }
  } else {
    std::vector<const Experiment*> selected;
    if (run_all) {
      for (const Experiment& e : all_experiments())
        if (e.kind != ExperimentKind::kMicro) selected.push_back(&e);
    } else {
      for (const std::string& id : ids) {
        const Experiment* e = find_experiment(id);
        if (!e) {
          std::cerr << "afs_sweep run: unknown experiment id '" << id
                    << "' (see afs_sweep list)\n";
          return 2;
        }
        selected.push_back(e);
      }
    }
    for (const Experiment* e : selected) {
      const int one = run_experiment(*e, ctx, std::cout);
      if (one != 0 && rc == 0) rc = one;
    }
  }

  if (ctx.store) {
    const double rate = ctx.store->hit_rate() * 100.0;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", rate);
    std::cout << "store: hits=" << ctx.store->hits()
              << " misses=" << ctx.store->misses()
              << " writes=" << ctx.store->writes() << " hit_rate=" << buf
              << "%\n";
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage(std::cerr, 2);
  const std::string& cmd = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  if (cmd == "list") return cmd_list();
  if (cmd == "run") return cmd_run(rest);
  if (cmd == "cache") return cmd_cache(rest);
  if (cmd == "--help" || cmd == "-h" || cmd == "help")
    return usage(std::cout, 0);
  std::cerr << "afs_sweep: unknown command '" << cmd << "'\n";
  return usage(std::cerr, 2);
}
