// afs_sweep: the batch driver over the experiment registry and the
// content-addressed result store (docs/SWEEP_SERVICE.md).
//
//   afs_sweep list
//       every registered experiment id with title and kind
//   afs_sweep run fig04 tab2 [shared flags]
//   afs_sweep run --all [shared flags]
//       run experiments in registry order, in one process, sharing one
//       worker pool (--jobs=N) and one result store. The store defaults
//       to <out-dir>/.store; --store=DIR moves it, --no-store disables
//       it. Exit code = first nonzero experiment exit.
//   afs_sweep run --kernel=K --machine=M --schedulers=S1,S2 [--procs=...]
//       [--perturb=...] [shared flags]
//       an arbitrary user grid through the same harness (see
//       src/experiments/grid.hpp for the K/M/perturb grammars); writes
//       <out-dir>/grid.csv.
//   afs_sweep cache stats [--store=DIR]
//   afs_sweep cache gc [--store=DIR] [--max-age-days=D] [--max-bytes=B]
//   afs_sweep cache verify [--store=DIR]
//       store maintenance: entry count/bytes/quarantined; eviction by age
//       then LRU size cap; and the integrity scrub — re-checksum every
//       entry, quarantine corruption, repair metadata (exit 1 when
//       anything corrupt was found).
//   afs_sweep serve --socket=PATH [--jobs=N --max-queue=M ...]
//       the long-running sweep daemon: line-delimited JSON requests over
//       a Unix-domain socket, served in arrival order against the same
//       registry and store (docs/SWEEP_SERVICE.md, "Serving"). With
//       --isolation=process cells execute in supervised sandbox worker
//       subprocesses: crashes are contained, crash-looping cells are
//       quarantined (poison_cell), and an exhausted restart budget turns
//       the daemon cache-only (degraded) until it refills
//       (docs/ROBUSTNESS.md).
//   afs_sweep request --socket=PATH run fig04 [--deadline=S] [--tag=T]
//   afs_sweep request --socket=PATH '{"verb":"stats"}'
//       client helper: send one request, stream the responses, exit with
//       0 = ok, 1 = failed, 2 = transport error, 3 = bounced
//       (overloaded / shutting down). --retries=N retries transport
//       failures and overloaded bounces under deterministic jittered
//       exponential backoff (--backoff=S scales it).
//
// (Hidden: `afs_sweep worker` is the sandbox worker entry point that
// --isolation=process re-execs; it is not part of the CLI surface.)
//
// Shared flags are exactly the bench-binary flags (see --help).
#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "experiments/bench_cli.hpp"
#include "experiments/grid.hpp"
#include "experiments/registry.hpp"
#include "runtime/thread_pool.hpp"
#include "sched/registry.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/json.hpp"
#include "service/worker.hpp"
#include "store/result_store.hpp"
#include "util/cancel.hpp"
#include "util/table.hpp"

namespace {

using namespace afs;

bool parse_double_flag(const std::string& arg, std::size_t prefix,
                       const char* flag, double lo, double hi, double& out);
bool parse_int_flag(const std::string& arg, std::size_t prefix,
                    const char* flag, long lo, long hi, int& out);

int usage(std::ostream& out, int rc) {
  out << "usage: afs_sweep <command> [args]\n"
         "  list                      registered experiments\n"
         "  list --schedulers         registered scheduler specs\n"
         "  run <id>... [flags]       run experiments by id\n"
         "  run --all [flags]         run every runnable experiment\n"
         "  run --kernel=K --machine=M --schedulers=S,S [--procs=P,P]\n"
         "      [--perturb=SPEC] [flags]   run a user-defined grid\n"
         "  cache stats [--store=DIR] store entries, bytes, quarantined\n"
         "  cache gc [--store=DIR] [--max-age-days=D] [--max-bytes=B]\n"
         "                            evict by age, then by LRU size cap\n"
         "  cache verify [--store=DIR]\n"
         "                            scrub: checksum every entry,\n"
         "                            quarantine corruption (exit 1 if any)\n"
         "  serve --socket=PATH [--jobs=N] [--max-queue=M]\n"
         "      [--default-deadline=S] [--drain-timeout=S]\n"
         "      [--write-timeout=S] [--max-connections=N] [--quiet]\n"
         "      [--out-dir=DIR] [--store=DIR|--no-store]\n"
         "      [--cell-timeout=S] [--cell-retries=N]\n"
         "      [--isolation=thread|process] [--poison-strikes=N]\n"
         "      [--restart-burst=N] [--restart-refill=R]\n"
         "                            the sweep daemon (SIGTERM drains)\n"
         "  request --socket=PATH [--raw] [--timeout=S]\n"
         "      [--retries=N] [--backoff=S] <request>\n"
         "      where <request> is one of\n"
         "        run <id>... | run --all   [--deadline=S] [--tag=T]\n"
         "        grid --kernel=K --machine=M --schedulers=S,S\n"
         "             [--procs=P,P] [--perturb=SPEC]\n"
         "        stats | health | shutdown\n"
         "        '{\"verb\":...}'       a raw protocol line\n"
         "shared flags: the bench-binary flags (afs_sweep run --help);\n"
         "run also takes --isolation=thread|process [--workers=N]\n"
         "(sandboxed cell execution: a crash loses one attempt, not the\n"
         "batch); the store defaults to <out-dir>/.store unless "
         "--no-store\n";
  return rc;
}

const char* kind_name(ExperimentKind k) {
  switch (k) {
    case ExperimentKind::kFigure:
      return "figure";
    case ExperimentKind::kTable:
      return "table";
    case ExperimentKind::kMicro:
      return "micro";
  }
  return "?";
}

int cmd_list(const std::vector<std::string>& args) {
  for (const std::string& a : args) {
    if (a == "--schedulers") {
      // Every spec form make_scheduler() accepts, with the registry's own
      // one-line description — the same single source of truth the
      // unknown-spec error prints.
      Table t({"spec", "description"});
      for (const SchedulerSpecInfo& info : scheduler_spec_infos())
        t.add_row({info.spec, info.description});
      std::cout << t.to_ascii();
      return 0;
    }
    std::cerr << "afs_sweep list: unknown flag '" << a << "'\n";
    return usage(std::cerr, 2);
  }
  Table t({"id", "kind", "csv", "title"});
  for (const Experiment& e : all_experiments()) {
    std::string csvs;
    for (const std::string& c : e.csv_ids)
      csvs += (csvs.empty() ? "" : " ") + c + ".csv";
    t.add_row({e.id, kind_name(e.kind), csvs, e.title});
  }
  std::cout << t.to_ascii();
  return 0;
}

/// Store root for maintenance commands: --store=DIR or <out-dir>/.store.
std::string store_root(const bench::BenchCli& cli) {
  return cli.store_dir.empty() ? cli.out_dir + "/.store" : cli.store_dir;
}

int cmd_cache(const std::vector<std::string>& args) {
  if (args.empty()) return usage(std::cerr, 2);
  const std::string sub = args[0];
  bench::BenchCli cli;
  GcOptions gc;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a.rfind("--store=", 0) == 0 || a.rfind("--out-dir=", 0) == 0) {
      std::string error;
      bool help = false;
      if (!bench::parse_cli_args({a}, cli, error, help)) {
        std::cerr << "afs_sweep cache: " << error << "\n";
        return 2;
      }
    } else if (a.rfind("--max-age-days=", 0) == 0) {
      gc.max_age_days = std::strtod(a.c_str() + 15, nullptr);
      if (!(gc.max_age_days > 0.0)) {
        std::cerr << "afs_sweep cache: bad --max-age-days value\n";
        return 2;
      }
    } else if (a.rfind("--max-bytes=", 0) == 0) {
      gc.max_bytes = std::strtoll(a.c_str() + 12, nullptr, 10);
      if (gc.max_bytes < 0) {
        std::cerr << "afs_sweep cache: bad --max-bytes value\n";
        return 2;
      }
    } else {
      std::cerr << "afs_sweep cache: unknown argument '" << a << "'\n";
      return 2;
    }
  }
  ResultStore store(store_root(cli));
  if (sub == "stats") {
    const StoreStats s = store.scan();
    std::cout << "store: " << store.root() << "\n"
              << "entries: " << s.entries << "\n"
              << "bytes: " << s.bytes << "\n"
              << "quarantined=" << s.quarantined << "\n";
    return 0;
  }
  if (sub == "gc") {
    if (gc.max_age_days <= 0.0 && gc.max_bytes < 0) {
      std::cerr << "afs_sweep cache gc: nothing to do — pass "
                   "--max-age-days=D and/or --max-bytes=B\n";
      return 2;
    }
    const GcOutcome o = store.gc(gc);
    std::cout << "store: " << store.root() << "\n"
              << "scanned: " << o.scanned << "\n"
              << "evicted: " << o.evicted << "\n"
              << "bytes: " << o.bytes_before << " -> " << o.bytes_after
              << "\n";
    return 0;
  }
  if (sub == "verify") {
    const ScrubOutcome o = store.verify();
    std::cout << "store: " << store.root() << "\n"
              << "scanned: " << o.scanned << "\n"
              << "ok: " << o.ok << "\n"
              << "corrupt: " << o.corrupt << "\n"
              << "upgraded: " << o.upgraded << "\n"
              << "tmp_removed: " << o.tmp_removed << "\n"
              << "mtime_repaired: " << o.mtime_repaired << "\n";
    // Nonzero exit iff corruption was found (and quarantined) — what a
    // cron job or CI stage keys its alerting on.
    return o.clean() ? 0 : 1;
  }
  std::cerr << "afs_sweep cache: unknown subcommand '" << sub << "'\n";
  return usage(std::cerr, 2);
}

// SIGINT/SIGTERM in batch mode fire the run's CancelToken cooperatively:
// running cells stop at the next simulation event boundary, queued cells
// are discarded, finished cells keep their checkpoints — so a Ctrl-C'd
// sweep is resumable with --resume and the CSVs are never truncated.
// CancelToken::cancel() is a lock-free atomic store, which is all a
// signal handler is allowed to do.
CancelToken* g_batch_cancel = nullptr;
volatile std::sig_atomic_t g_batch_signal = 0;

void batch_signal_handler(int sig) {
  g_batch_signal = sig;
  if (g_batch_cancel != nullptr) g_batch_cancel->cancel();
}

int cmd_run(const std::vector<std::string>& args) {
  std::vector<std::string> ids;
  std::vector<std::string> shared;
  bool run_all = false;
  std::string kernel, machine, schedulers, perturb;
  std::string isolation = "thread";
  int sandbox_workers = 0;  // 0 = default to --jobs
  for (const std::string& a : args) {
    if (a == "--all") {
      run_all = true;
    } else if (a.rfind("--kernel=", 0) == 0) {
      kernel = a.substr(9);
    } else if (a.rfind("--machine=", 0) == 0) {
      machine = a.substr(10);
    } else if (a.rfind("--schedulers=", 0) == 0) {
      schedulers = a.substr(13);
    } else if (a.rfind("--perturb=", 0) == 0) {
      perturb = a.substr(10);
    } else if (a.rfind("--isolation=", 0) == 0) {
      isolation = a.substr(12);
      if (isolation != "thread" && isolation != "process") {
        std::cerr << "afs_sweep run: --isolation must be thread or process\n";
        return 2;
      }
    } else if (a.rfind("--workers=", 0) == 0) {
      if (!parse_int_flag(a, 10, "--workers", 1, 256, sandbox_workers))
        return 2;
    } else if (a.rfind("--", 0) == 0) {
      shared.push_back(a);
    } else {
      ids.push_back(a);
    }
  }
  const bool grid = !kernel.empty() || !machine.empty() || !schedulers.empty();
  if (grid && (run_all || !ids.empty())) {
    std::cerr << "afs_sweep run: a grid (--kernel/--machine/--schedulers) "
                 "cannot be combined with experiment ids\n";
    return 2;
  }
  if (!grid && !run_all && ids.empty()) return usage(std::cerr, 2);

  bench::BenchCli cli;
  std::string error;
  bool want_help = false;
  if (!bench::parse_cli_args(shared, cli, error, want_help)) {
    std::cerr << "afs_sweep run: " << error << "\n";
    bench::print_usage("afs_sweep run", std::cerr);
    return 2;
  }
  if (want_help) {
    bench::print_usage("afs_sweep run", std::cout);
    return 0;
  }

  ExperimentContext ctx;
  ctx.cli = cli;

  CancelToken interrupt;
  g_batch_cancel = &interrupt;
  ctx.cancel = &interrupt;
  struct sigaction sa {}, old_int {}, old_term {};
  sa.sa_handler = batch_signal_handler;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, &old_int);
  sigaction(SIGTERM, &sa, &old_term);

  // The driver's store is ON by default: sweeps over overlapping grids
  // are exactly where the content-addressed cache pays off.
  std::optional<ResultStore> store;
  if (!cli.no_store) {
    store.emplace(store_root(cli));
    ctx.store = &*store;
  }

  // One worker pool for every sweep in this invocation. jobs == 1 keeps
  // the bit-identity reference path (serial in the caller).
  std::optional<ThreadPool> pool;
  if (cli.jobs > 1) {
    pool.emplace(cli.jobs);
    ctx.pool = &*pool;
  }

  // --isolation=process: store-missed cells run in supervised sandbox
  // subprocesses (re-exec'ing this binary's hidden `worker` command), so
  // an engine crash loses one cell attempt, not the whole batch.
  std::unique_ptr<service::WorkerPool> sandbox;
  if (isolation == "process") {
    service::WorkerPoolOptions wopts;
    wopts.workers = sandbox_workers > 0 ? sandbox_workers : cli.jobs;
    wopts.log = &std::cerr;
    sandbox = std::make_unique<service::WorkerPool>(std::move(wopts));
    std::string werror;
    if (!sandbox->start(werror)) {
      std::cerr << "afs_sweep run: cannot start sandbox workers: " << werror
                << "\n";
      return 2;
    }
    ctx.executor = sandbox.get();
  }

  int rc = 0;
  if (grid) {
    if (kernel.empty() || machine.empty() || schedulers.empty()) {
      std::cerr << "afs_sweep run: a grid needs all of --kernel=, "
                   "--machine= and --schedulers=\n";
      return 2;
    }
    try {
      // The same code path the daemon's `grid` verb validates and runs,
      // so both produce byte-identical grid.csv for the same specs.
      GridSpec g;
      g.kernel = kernel;
      g.machine = machine;
      g.schedulers = schedulers;
      g.perturb = perturb;
      g.procs = cli.procs;
      const Experiment e = make_grid_experiment(g);
      rc = run_experiment(e, ctx, std::cout);
    } catch (const std::exception& ex) {
      std::cerr << "afs_sweep run: " << ex.what() << "\n";
      return 2;
    }
  } else {
    std::vector<const Experiment*> selected;
    if (run_all) {
      for (const Experiment& e : all_experiments())
        if (e.kind != ExperimentKind::kMicro) selected.push_back(&e);
    } else {
      for (const std::string& id : ids) {
        const Experiment* e = find_experiment(id);
        if (!e) {
          std::cerr << "afs_sweep run: unknown experiment id '" << id
                    << "' (see afs_sweep list)\n";
          return 2;
        }
        selected.push_back(e);
      }
    }
    for (const Experiment* e : selected) {
      if (interrupt.cancelled()) break;  // queued experiments never start
      const int one = run_experiment(*e, ctx, std::cout);
      if (one != 0 && rc == 0) rc = one;
    }
  }

  if (ctx.store) {
    const double rate = ctx.store->hit_rate() * 100.0;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", rate);
    std::cout << "store: hits=" << ctx.store->hits()
              << " misses=" << ctx.store->misses()
              << " writes=" << ctx.store->writes() << " hit_rate=" << buf
              << "%\n";
  }
  if (sandbox) {
    const service::WorkerPoolStats ws = sandbox->stats();
    std::cout << "workers: cells=" << ws.cells_executed
              << " spawned=" << ws.spawned << " crashes=" << ws.crashes
              << " poisoned=" << ws.poisoned << "\n";
  }

  sigaction(SIGINT, &old_int, nullptr);
  sigaction(SIGTERM, &old_term, nullptr);
  g_batch_cancel = nullptr;
  if (interrupt.cancelled()) {
    std::cerr << "afs_sweep run: interrupted (signal "
              << static_cast<int>(g_batch_signal)
              << "); checkpoints are flushed — rerun with --resume to "
                 "pick up where this left off\n";
    return 130;
  }
  return rc;
}

bool parse_double_flag(const std::string& arg, std::size_t prefix,
                       const char* flag, double lo, double hi, double& out) {
  const std::string tok = arg.substr(prefix);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(tok.c_str(), &end);
  if (tok.empty() || end == tok.c_str() || *end != '\0' || errno == ERANGE ||
      v < lo || v > hi) {
    std::cerr << "afs_sweep: bad " << flag << " value '" << tok << "'\n";
    return false;
  }
  out = v;
  return true;
}

bool parse_int_flag(const std::string& arg, std::size_t prefix,
                    const char* flag, long lo, long hi, int& out) {
  const std::string tok = arg.substr(prefix);
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(tok.c_str(), &end, 10);
  if (tok.empty() || end == tok.c_str() || *end != '\0' || errno == ERANGE ||
      v < lo || v > hi) {
    std::cerr << "afs_sweep: bad " << flag << " value '" << tok << "'\n";
    return false;
  }
  out = static_cast<int>(v);
  return true;
}

int cmd_serve(const std::vector<std::string>& args) {
  service::DaemonOptions opts;
  opts.log = &std::cerr;
  for (const std::string& a : args) {
    if (a.rfind("--socket=", 0) == 0) {
      opts.socket_path = a.substr(9);
    } else if (a.rfind("--out-dir=", 0) == 0) {
      opts.out_dir = a.substr(10);
    } else if (a.rfind("--store=", 0) == 0) {
      opts.store_dir = a.substr(8);
      opts.no_store = false;
    } else if (a == "--no-store") {
      opts.no_store = true;
    } else if (a.rfind("--jobs=", 0) == 0) {
      if (!parse_int_flag(a, 7, "--jobs", 1, 256, opts.jobs)) return 2;
    } else if (a.rfind("--max-queue=", 0) == 0) {
      if (!parse_int_flag(a, 12, "--max-queue", 1, 4096, opts.max_queue))
        return 2;
    } else if (a.rfind("--max-connections=", 0) == 0) {
      if (!parse_int_flag(a, 18, "--max-connections", 1, 1024,
                          opts.max_connections))
        return 2;
    } else if (a.rfind("--default-deadline=", 0) == 0) {
      if (!parse_double_flag(a, 19, "--default-deadline", 0.0, 86400.0,
                             opts.default_deadline))
        return 2;
    } else if (a.rfind("--drain-timeout=", 0) == 0) {
      if (!parse_double_flag(a, 16, "--drain-timeout", 0.001, 86400.0,
                             opts.drain_timeout))
        return 2;
    } else if (a.rfind("--write-timeout=", 0) == 0) {
      if (!parse_double_flag(a, 16, "--write-timeout", 0.001, 3600.0,
                             opts.write_timeout))
        return 2;
    } else if (a.rfind("--cell-timeout=", 0) == 0) {
      if (!parse_double_flag(a, 15, "--cell-timeout", 0.0, 86400.0,
                             opts.cell_timeout))
        return 2;
    } else if (a.rfind("--cell-retries=", 0) == 0) {
      if (!parse_int_flag(a, 15, "--cell-retries", 0, 100, opts.cell_retries))
        return 2;
    } else if (a.rfind("--isolation=", 0) == 0) {
      opts.isolation = a.substr(12);
      if (opts.isolation != "thread" && opts.isolation != "process") {
        std::cerr << "afs_sweep serve: --isolation must be thread or "
                     "process\n";
        return 2;
      }
    } else if (a.rfind("--poison-strikes=", 0) == 0) {
      if (!parse_int_flag(a, 17, "--poison-strikes", 1, 100,
                          opts.poison_strikes))
        return 2;
    } else if (a.rfind("--restart-burst=", 0) == 0) {
      if (!parse_double_flag(a, 16, "--restart-burst", 0.0, 10000.0,
                             opts.restart_burst))
        return 2;
    } else if (a.rfind("--restart-refill=", 0) == 0) {
      if (!parse_double_flag(a, 17, "--restart-refill", 0.0, 10000.0,
                             opts.restart_refill))
        return 2;
    } else if (a == "--quiet") {
      opts.log = nullptr;
    } else {
      std::cerr << "afs_sweep serve: unknown argument '" << a << "'\n";
      return 2;
    }
  }
  if (opts.socket_path.empty()) {
    std::cerr << "afs_sweep serve: --socket=PATH is required\n";
    return 2;
  }
  try {
    service::SweepDaemon daemon(std::move(opts));
    return daemon.serve();
  } catch (const std::exception& ex) {
    std::cerr << "afs_sweep serve: " << ex.what() << "\n";
    return 2;
  }
}

/// Builds the protocol line for `afs_sweep request`'s convenience syntax
/// (run/grid/stats/health/shutdown + flags). A raw '{...}' argument is
/// passed through untouched so tests can speak arbitrary frames.
bool build_request_line(const std::vector<std::string>& args,
                        std::string& line, std::string& error) {
  using service::json_number;
  using service::json_quote;
  if (args.empty()) {
    error = "need a request (run/grid/stats/health/shutdown or '{...}')";
    return false;
  }
  if (args[0].rfind('{', 0) == 0) {
    if (args.size() != 1) {
      error = "a raw JSON request takes no further arguments";
      return false;
    }
    line = args[0];
    return true;
  }
  const std::string& verb = args[0];
  std::vector<std::string> ids;
  bool all = false;
  std::string kernel, machine, schedulers, procs, perturb, tag;
  double deadline = 0.0;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--all") {
      all = true;
    } else if (a.rfind("--kernel=", 0) == 0) {
      kernel = a.substr(9);
    } else if (a.rfind("--machine=", 0) == 0) {
      machine = a.substr(10);
    } else if (a.rfind("--schedulers=", 0) == 0) {
      schedulers = a.substr(13);
    } else if (a.rfind("--procs=", 0) == 0) {
      procs = a.substr(8);
    } else if (a.rfind("--perturb=", 0) == 0) {
      perturb = a.substr(10);
    } else if (a.rfind("--tag=", 0) == 0) {
      tag = a.substr(6);
    } else if (a.rfind("--deadline=", 0) == 0) {
      char* end = nullptr;
      deadline = std::strtod(a.c_str() + 11, &end);
      if (end == a.c_str() + 11 || *end != '\0' || !(deadline > 0.0)) {
        error = "bad --deadline value";
        return false;
      }
    } else if (a.rfind("--", 0) == 0) {
      error = "unknown argument '" + a + "'";
      return false;
    } else {
      ids.push_back(a);
    }
  }
  line = "{\"verb\":" + json_quote(verb);
  if (verb == "run") {
    if (all) {
      line += ",\"all\":true";
    } else {
      line += ",\"ids\":[";
      for (std::size_t i = 0; i < ids.size(); ++i)
        line += (i > 0 ? "," : "") + json_quote(ids[i]);
      line += "]";
    }
  } else if (verb == "grid") {
    line += ",\"kernel\":" + json_quote(kernel) +
            ",\"machine\":" + json_quote(machine) +
            ",\"schedulers\":" + json_quote(schedulers);
    if (!procs.empty()) line += ",\"procs\":" + json_quote(procs);
    if (!perturb.empty()) line += ",\"perturb\":" + json_quote(perturb);
  } else if (verb != "stats" && verb != "health" && verb != "shutdown") {
    error = "unknown request verb '" + verb + "'";
    return false;
  }
  if (deadline > 0.0) line += ",\"deadline\":" + json_number(deadline);
  if (!tag.empty()) line += ",\"tag\":" + json_quote(tag);
  line += "}";
  return true;
}

int cmd_request(const std::vector<std::string>& args) {
  std::string socket_path;
  bool raw = false;
  double timeout = 0.0;
  service::RequestRetryOptions retry;
  std::vector<std::string> rest;
  for (const std::string& a : args) {
    if (a.rfind("--socket=", 0) == 0) {
      socket_path = a.substr(9);
    } else if (a == "--raw") {
      raw = true;
    } else if (a.rfind("--timeout=", 0) == 0) {
      if (!parse_double_flag(a, 10, "--timeout", 0.001, 86400.0, timeout))
        return 2;
    } else if (a.rfind("--retries=", 0) == 0) {
      if (!parse_int_flag(a, 10, "--retries", 0, 100, retry.retries))
        return 2;
    } else if (a.rfind("--backoff=", 0) == 0) {
      if (!parse_double_flag(a, 10, "--backoff", 0.0, 3600.0,
                             retry.backoff_base))
        return 2;
    } else {
      rest.push_back(a);
    }
  }
  if (socket_path.empty()) {
    std::cerr << "afs_sweep request: --socket=PATH is required\n";
    return 2;
  }
  std::string line, error;
  if (!build_request_line(rest, line, error)) {
    std::cerr << "afs_sweep request: " << error << "\n";
    return 2;
  }
  return service::run_request(socket_path, line, std::cout, std::cerr, raw,
                              timeout, retry);
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage(std::cerr, 2);
  const std::string& cmd = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  if (cmd == "list") return cmd_list(rest);
  if (cmd == "run") return cmd_run(rest);
  if (cmd == "cache") return cmd_cache(rest);
  if (cmd == "serve") return cmd_serve(rest);
  if (cmd == "request") return cmd_request(rest);
  // Hidden: the sandbox worker entry point. A WorkerPool re-execs this
  // binary with argv {"worker"}; stdin/stdout are the protocol pipes.
  if (cmd == "worker") return afs::service::worker_main();
  if (cmd == "--help" || cmd == "-h" || cmd == "help")
    return usage(std::cout, 0);
  std::cerr << "afs_sweep: unknown command '" << cmd << "'\n";
  return usage(std::cerr, 2);
}
