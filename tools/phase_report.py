#!/usr/bin/env python3
"""Render engine phase-timer breakdowns (<id>.phases.json) as a table.

A bench binary run with --time-phases writes one phases.json next to its
CSV: per-scheduler aggregates of where the engine's host wall clock went
(scheduler calls, work charging, footprint generation, MemorySystem
access, and the residual event-core bookkeeping). This prints each file
as a table with percentages of the sweep total, so claims like "half the
wall clock is MemorySystem::access" can be checked at a glance.

Usage:
  python3 tools/phase_report.py bench_results/fig15.phases.json [more...]
  python3 tools/phase_report.py bench_results   # every *.phases.json in it

Stdlib only; no third-party dependencies.
"""
import glob
import json
import os
import sys

PHASES = [
    ("scheduler_s", "scheduler"),
    ("work_s", "work"),
    ("footprint_s", "footprint"),
    ("memory_s", "memory"),
    ("event_core_other_s", "event core/other"),
]


def render(path):
    with open(path) as f:
        doc = json.load(f)
    rows = sorted(doc.get("schedulers", {}).items())
    rows.append(("TOTAL", doc["sweep"]))
    print(f"\n== {doc.get('id', path)} ({path}) ==")
    header = f"{'scheduler':<16}{'total_s':>9}" + "".join(
        f"{label:>18}" for _, label in PHASES
    )
    print(header)
    for name, agg in rows:
        total = agg.get("total_s", 0.0)
        cells = f"{name:<16}{total:>9.3f}"
        for key, _ in PHASES:
            t = agg.get(key, 0.0)
            pct = 100.0 * t / total if total > 0 else 0.0
            cells += f"{t:>10.3f} ({pct:4.1f}%)"
        print(cells)
        if agg.get("cells_untimed", 0):
            print(f"{'':16}({agg['cells_untimed']} cells untimed — "
                  "resumed from checkpoint, host timings not stored)")
    acc = doc["sweep"].get("memory_accesses", 0)
    mem = doc["sweep"].get("memory_s", 0.0)
    if acc:
        print(f"{acc} memory accesses, {1e9 * mem / acc:.1f} ns each")


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    paths = []
    for arg in argv[1:]:
        if os.path.isdir(arg):
            paths.extend(sorted(glob.glob(os.path.join(arg, "*.phases.json"))))
        else:
            paths.append(arg)
    if not paths:
        print("no *.phases.json files found", file=sys.stderr)
        return 1
    for path in paths:
        render(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
